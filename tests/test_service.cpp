// Tests for pdc::service (ctest -L service): the DynamicGraph delta
// structure, the shared coloring checkers, incremental-vs-full
// equivalence (after ANY mutation sequence the coloring is complete,
// proper, and in-palette — the same guarantee the one-shot pipeline
// gives — and a full re-solve from the same state agrees), region-cache
// accounting, batch-coalescing determinism, the full-re-solve fallback,
// and the concurrent read path: epoch-published snapshots (monotone
// sequencing, chunk reuse, held-snapshot consistency), palette
// compaction after delete churn, per-session Batcher read modes, and a
// reader/writer property test that runs clean under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <thread>

#include "pdc/graph/coloring.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/service/batcher.hpp"
#include "pdc/service/service.hpp"

namespace pdc {
namespace {

using service::ColoringService;
using service::ColoringSnapshot;
using service::Mutation;
using service::MutationResult;
using service::ReadMode;
using service::ServiceConfig;

// The full service invariant: every live node colored, in its palette,
// and conflict-free. Checked through the public surface.
void expect_invariant(ColoringService& svc, const char* where) {
  EXPECT_TRUE(svc.query_validate()) << where;
  const auto& g = svc.graph();
  for (NodeId v = 0; v < g.capacity(); ++v) {
    if (!g.alive(v)) continue;
    auto pal = svc.palette_of(v);
    EXPECT_GE(pal.size(), static_cast<std::size_t>(g.degree(v)) + 1)
        << where << ": degree+1 palette discipline broken at " << v;
  }
}

// ---- DynamicGraph. ----

TEST(DynamicGraph, MirrorsSeedGraph) {
  Graph g = gen::gnp(200, 0.05, 3);
  service::DynamicGraph dg(g);
  EXPECT_EQ(dg.capacity(), g.num_nodes());
  EXPECT_EQ(dg.num_alive(), g.num_nodes());
  EXPECT_EQ(dg.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = g.neighbors(v);
    auto b = dg.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(DynamicGraph, EdgeInsertDeleteRoundTrip) {
  service::DynamicGraph dg(gen::grid(3, 3));
  const std::uint64_t m0 = dg.num_edges();
  EXPECT_FALSE(dg.has_edge(0, 8));
  EXPECT_TRUE(dg.add_edge(0, 8));
  EXPECT_FALSE(dg.add_edge(8, 0));  // already present
  EXPECT_FALSE(dg.add_edge(4, 4));  // self-loop
  EXPECT_TRUE(dg.has_edge(8, 0));
  EXPECT_EQ(dg.num_edges(), m0 + 1);
  EXPECT_TRUE(dg.remove_edge(0, 8));
  EXPECT_FALSE(dg.remove_edge(0, 8));  // already gone
  EXPECT_EQ(dg.num_edges(), m0);
}

TEST(DynamicGraph, VertexRemovalDetachesAndIdsAreNeverReused) {
  service::DynamicGraph dg(gen::complete(5));
  dg.remove_vertex(2);
  EXPECT_FALSE(dg.alive(2));
  EXPECT_EQ(dg.num_alive(), 4u);
  EXPECT_EQ(dg.num_edges(), 6u);  // K5 minus a vertex = K4
  for (NodeId v : {0u, 1u, 3u, 4u}) EXPECT_FALSE(dg.has_edge(v, 2));
  const NodeId id = dg.add_vertex();
  EXPECT_EQ(id, 5u);  // fresh id, not the dead 2
  EXPECT_EQ(dg.degree(id), 0u);
  Graph snap = dg.to_graph();
  EXPECT_EQ(snap.num_nodes(), 6u);
  EXPECT_EQ(snap.degree(2), 0u);
}

// ---- Coloring checkers. ----

TEST(Checkers, IsProperColoringAgreesWithCheckColoring) {
  Graph g = gen::gnp(150, 0.06, 11);
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolveResult r = d1lc::solve_d1lc(inst, {});
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(is_proper_coloring(inst, r.coloring));
  EXPECT_TRUE(is_proper_coloring(g, r.coloring));

  Coloring bad = r.coloring;
  // Force a conflict on the first edge.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) > 0) {
      bad[g.neighbors(v)[0]] = bad[v];
      break;
    }
  EXPECT_FALSE(is_proper_coloring(g, bad));

  Coloring incomplete = r.coloring;
  incomplete[0] = kNoColor;
  EXPECT_FALSE(is_proper_coloring(g, incomplete));
}

TEST(Checkers, ValidatePartialChecksOnlyTheRegion) {
  Graph g = gen::grid(1, 4);  // path 0-1-2-3
  Coloring c = {0, 1, kNoColor, kNoColor};
  std::vector<NodeId> left = {0, 1};
  std::vector<NodeId> right = {2, 3};
  EXPECT_TRUE(validate_partial(g, c, left));
  EXPECT_FALSE(validate_partial(g, c, right));  // uncolored
  c = {0, 0, 1, 2};
  // Both endpoints of the conflicting edge are outside {2, 3}.
  EXPECT_TRUE(validate_partial(g, c, right));
  EXPECT_FALSE(validate_partial(g, c, left));
}

// ---- Incremental recoloring. ----

TEST(Service, InitialSolveIsProper) {
  Graph g = gen::gnp(300, 0.03, 5);
  ColoringService svc(g);
  expect_invariant(svc, "initial");
  EXPECT_EQ(svc.stats().full_resolves, 1u);
}

TEST(Service, EdgeInsertConflictRecolorsDamageOnly) {
  Graph g = gen::gnp(400, 0.02, 9);
  ColoringService svc(g);
  // Find two non-adjacent equal-colored nodes: inserting that edge
  // must damage exactly one endpoint.
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId u = 0; u < g.num_nodes() && a == kInvalidNode; ++u)
    for (NodeId v = u + 1; v < g.num_nodes(); ++v)
      if (svc.color_of(u) == svc.color_of(v) && !svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidNode);
  MutationResult r = svc.apply(Mutation::insert_edge(a, b));
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.damaged, 1u);
  EXPECT_FALSE(r.full_resolve);
  EXPECT_EQ(svc.stats().incremental_recolors, 1u);
  expect_invariant(svc, "after conflict insert");
}

TEST(Service, NonConflictingMutationsDamageNothing) {
  Graph g = gen::gnp(300, 0.02, 17);
  ColoringService svc(g);
  // Deletions never damage (grow-only palettes keep held colors valid).
  auto nb = g.neighbors(0);
  ASSERT_FALSE(nb.empty());
  MutationResult r = svc.apply(Mutation::delete_edge(0, nb[0]));
  EXPECT_EQ(r.damaged, 0u);
  EXPECT_TRUE(r.valid);
  // Inserting an edge between differently colored nodes: no damage.
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId u = 0; u < g.num_nodes() && a == kInvalidNode; ++u)
    for (NodeId v = u + 1; v < g.num_nodes(); ++v)
      if (svc.color_of(u) != svc.color_of(v) && !svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidNode);
  r = svc.apply(Mutation::insert_edge(a, b));
  EXPECT_EQ(r.damaged, 0u);
  EXPECT_EQ(svc.stats().incremental_recolors, 0u);
  expect_invariant(svc, "after non-conflicting mutations");
}

// Property test: randomized delta sequences at several scales. After
// EVERY batch the invariant must hold (the pipeline guarantee carries
// over to the incremental path), and at the end a full re-solve from
// the same final state must also be proper.
class ServiceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ServiceProperty, RandomDeltaSequencesKeepTheColoringProper) {
  Graph g;
  switch (GetParam()) {
    case 0: g = gen::gnp(200, 0.04, 21); break;
    case 1: g = gen::power_law(500, 2.5, 8.0, 22); break;
    default: g = gen::small_world(1000, 4, 0.1, 23); break;
  }
  ColoringService svc(g);
  std::mt19937_64 rng(1234 + GetParam());
  auto pick_alive = [&]() {
    const auto& dg = svc.graph();
    for (;;) {
      NodeId v = static_cast<NodeId>(rng() % dg.capacity());
      if (dg.alive(v)) return v;
    }
  };
  for (int step = 0; step < 30; ++step) {
    std::vector<Mutation> batch;
    const std::size_t k = 1 + rng() % 4;
    for (std::size_t i = 0; i < k; ++i) {
      switch (rng() % 8) {
        case 0:
          batch.push_back(Mutation::insert_vertex());
          break;
        case 1: {
          NodeId v = pick_alive();
          // Keep the graph from emptying out.
          if (svc.graph().num_alive() > 50)
            batch.push_back(Mutation::delete_vertex(v));
          break;
        }
        case 2:
        case 3: {
          NodeId u = pick_alive(), v = pick_alive();
          if (u != v) batch.push_back(Mutation::delete_edge(u, v));
          break;
        }
        default: {
          NodeId u = pick_alive(), v = pick_alive();
          if (u != v) batch.push_back(Mutation::insert_edge(u, v));
          break;
        }
      }
    }
    if (batch.empty()) continue;
    MutationResult r = svc.apply_batch(batch);
    EXPECT_TRUE(r.valid) << "step " << step;
    ASSERT_TRUE(svc.query_validate()) << "step " << step;
  }
  expect_invariant(svc, "after delta sequence");

  // A full re-solve of the final state (same graph, same palettes)
  // must also be proper — the incremental path did not paint the
  // service into a corner the one-shot pipeline could not handle.
  d1lc::RegionInstance snap = svc.snapshot_instance();
  ASSERT_TRUE(snap.instance.valid());
  d1lc::SolveResult full = d1lc::solve_d1lc(snap.instance, {});
  EXPECT_TRUE(full.valid);
  EXPECT_TRUE(is_proper_coloring(snap.instance, full.coloring));
}

INSTANTIATE_TEST_SUITE_P(Scales, ServiceProperty, ::testing::Values(0, 1, 2));

// ---- Cache accounting. ----

TEST(Service, CacheAccountingCoversEveryIncrementalRecolor) {
  Graph g = gen::gnp(300, 0.03, 31);
  ColoringService svc(g);
  std::mt19937_64 rng(77);
  for (int i = 0; i < 40; ++i) {
    NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    if (u == v) continue;
    svc.apply(Mutation::insert_edge(u, v));
  }
  const auto& s = svc.stats();
  // Every incremental recolor consulted the cache exactly once.
  EXPECT_EQ(s.cache.hits + s.cache.misses, s.incremental_recolors);
  EXPECT_GT(s.incremental_recolors, 0u);
}

TEST(Service, IsomorphicDamageHitsTheCache) {
  // Two identical disjoint components colored identically (warm
  // start), so the same local delta in each produces the SAME region
  // instance — the second recolor must be served from the cache.
  Graph comp = gen::grid(4, 4);  // 16 nodes, bipartite
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < comp.num_nodes(); ++v)
    for (NodeId u : comp.neighbors(v))
      if (v < u) {
        edges.emplace_back(v, u);
        edges.emplace_back(v + 16, u + 16);
      }
  Graph g = Graph::from_edges(32, std::move(edges));
  D1lcInstance inst = make_degree_plus_one(g);
  d1lc::SolveResult base = d1lc::solve_d1lc(inst, {});
  ASSERT_TRUE(base.valid);
  Coloring mirrored = base.coloring;
  for (NodeId v = 0; v < 16; ++v) mirrored[v + 16] = mirrored[v];
  ASSERT_TRUE(is_proper_coloring(inst, mirrored));

  ColoringService svc(inst, mirrored);
  // Find a same-colored non-adjacent pair inside component one.
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId u = 0; u < 16 && a == kInvalidNode; ++u)
    for (NodeId v = u + 1; v < 16; ++v)
      if (svc.color_of(u) == svc.color_of(v) && !svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidNode);
  MutationResult r1 = svc.apply(Mutation::insert_edge(a, b));
  MutationResult r2 = svc.apply(Mutation::insert_edge(a + 16, b + 16));
  EXPECT_TRUE(r1.valid);
  EXPECT_TRUE(r2.valid);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(svc.stats().cache.hits, 1u);
  // The mirrored delta got the mirrored color.
  EXPECT_EQ(svc.color_of(std::max(a, b)),
            svc.color_of(std::max(a, b) + 16));
  expect_invariant(svc, "after mirrored deltas");
}

TEST(Service, CacheCanBeDisabled) {
  Graph g = gen::gnp(200, 0.04, 41);
  ServiceConfig cfg;
  cfg.cache_capacity = 0;
  ColoringService svc(g, cfg);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20; ++i) {
    NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    if (u != v) svc.apply(Mutation::insert_edge(u, v));
  }
  EXPECT_EQ(svc.stats().cache.hits, 0u);
  EXPECT_EQ(svc.stats().cache.misses, 0u);
  expect_invariant(svc, "cache disabled");
}

// ---- Batch coalescing. ----

TEST(Service, BatchResultIsIndependentOfArrivalOrder) {
  Graph g = gen::gnp(250, 0.03, 51);
  std::vector<Mutation> batch = {
      Mutation::insert_vertex(),
      Mutation::insert_edge(1, 2),
      Mutation::insert_edge(250, 3),  // references the new vertex
      Mutation::delete_edge(0, g.neighbors(0).empty() ? 1 : g.neighbors(0)[0]),
      Mutation::insert_edge(5, 9),
      Mutation::delete_vertex(17),
      Mutation::insert_edge(20, 30),
  };
  std::mt19937_64 rng(99);
  std::vector<Coloring> outcomes;
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Mutation> shuffled = batch;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    ColoringService svc(g);
    MutationResult r = svc.apply_batch(shuffled);
    EXPECT_TRUE(r.valid);
    ASSERT_EQ(r.new_vertices.size(), 1u);
    EXPECT_EQ(r.new_vertices[0], 250u);
    outcomes.emplace_back(svc.colors().begin(), svc.colors().end());
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i)
    EXPECT_EQ(outcomes[0], outcomes[i]) << "arrival order changed the result";
}

TEST(Service, BatchCoalescesDamageIntoOneSweep) {
  Graph g = gen::gnp(300, 0.03, 61);
  ColoringService one_by_one(g);
  ColoringService batched(g);
  std::vector<Mutation> ms;
  std::mt19937_64 rng(5);
  while (ms.size() < 10) {
    NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    if (u != v) ms.push_back(Mutation::insert_edge(u, v));
  }
  for (const Mutation& m : ms) one_by_one.apply(m);
  batched.apply_batch(ms);
  // One sweep for the whole batch vs up to one per mutation.
  EXPECT_EQ(batched.stats().batches, 1u);
  EXPECT_LE(batched.stats().incremental_recolors +
                batched.stats().full_resolves,
            2u);  // initial solve + at most one sweep
  expect_invariant(one_by_one, "one-by-one");
  expect_invariant(batched, "batched");
}

TEST(Service, BatcherFlushesOnQueryAndMaxPending) {
  Graph g = gen::gnp(200, 0.03, 71);
  ColoringService svc(g);
  service::Batcher front(svc, 3);
  EXPECT_FALSE(front.enqueue(Mutation::insert_edge(0, 50)).has_value());
  EXPECT_FALSE(front.enqueue(Mutation::insert_edge(1, 60)).has_value());
  EXPECT_EQ(front.pending(), 2u);
  // Read-your-writes: the query flushes first.
  front.query_validate();
  EXPECT_EQ(front.pending(), 0u);
  EXPECT_EQ(svc.stats().batches, 1u);
  // Auto-flush at max_pending.
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(
        front.enqueue(Mutation::insert_edge(2, static_cast<NodeId>(80 + i)))
            .has_value());
  auto r = front.enqueue(Mutation::insert_edge(3, 90));
  EXPECT_TRUE(r.has_value());
  EXPECT_EQ(front.pending(), 0u);
}

// ---- Atomic batch rejection & fallback. ----

TEST(Service, BadBatchIsRejectedAtomically) {
  Graph g = gen::gnp(100, 0.05, 81);
  ColoringService svc(g);
  Coloring before(svc.colors().begin(), svc.colors().end());
  const std::uint64_t m0 = svc.graph().num_edges();
  std::vector<Mutation> batch = {
      Mutation::insert_vertex(),
      Mutation::insert_edge(0, 1),
      Mutation::insert_edge(5, 99999),  // bad reference
  };
  EXPECT_THROW(svc.apply_batch(batch), check_error);
  EXPECT_EQ(svc.graph().num_edges(), m0);
  EXPECT_EQ(svc.graph().capacity(), g.num_nodes());  // no vertex added
  EXPECT_EQ(before, Coloring(svc.colors().begin(), svc.colors().end()));
  expect_invariant(svc, "after rejected batch");
}

TEST(Service, ZeroFractionForcesFullResolve) {
  Graph g = gen::gnp(150, 0.05, 91);
  ServiceConfig cfg;
  cfg.full_resolve_fraction = 0.0;
  ColoringService svc(g, cfg);
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId u = 0; u < g.num_nodes() && a == kInvalidNode; ++u)
    for (NodeId v = u + 1; v < g.num_nodes(); ++v)
      if (svc.color_of(u) == svc.color_of(v) && !svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidNode);
  MutationResult r = svc.apply(Mutation::insert_edge(a, b));
  EXPECT_TRUE(r.full_resolve);
  EXPECT_TRUE(r.valid);
  // Initial solve + the forced fallback.
  EXPECT_EQ(svc.stats().full_resolves, 2u);
  EXPECT_EQ(svc.stats().incremental_recolors, 0u);
  expect_invariant(svc, "after forced full re-solve");
}

// ---- Snapshots: publication, sequencing, incremental construction. ----

TEST(Snapshot, PublishesOnEveryBatchWithMonotoneSequencing) {
  Graph g = gen::gnp(300, 0.03, 101);
  ColoringService svc(g);
  auto s0 = svc.snapshot();
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->epoch, 1u);  // the initial solve publishes
  EXPECT_EQ(s0->batch_seq, 0u);
  EXPECT_TRUE(s0->validate());
  EXPECT_EQ(s0->num_alive, g.num_nodes());

  std::uint64_t prev_epoch = s0->epoch;
  std::uint64_t prev_seq = 0;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 6; ++i) {
    NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    if (u == v) continue;
    MutationResult r = svc.apply(Mutation::insert_edge(u, v));
    auto s = svc.snapshot();
    // Read-your-writes anchor: the snapshot visible after apply returns
    // carries this batch's sequence number (or later).
    EXPECT_EQ(r.batch_seq, prev_seq + 1);
    EXPECT_GE(s->batch_seq, r.batch_seq);
    EXPECT_GT(s->epoch, prev_epoch);
    EXPECT_EQ(s->epoch, r.epoch);
    EXPECT_TRUE(s->validate());
    prev_epoch = s->epoch;
    prev_seq = r.batch_seq;
  }
  EXPECT_GE(svc.stats().snapshot_publishes, 7u);
}

TEST(Snapshot, SnapshotAgreesWithDirectState) {
  Graph g = gen::gnp(400, 0.02, 103);
  ColoringService svc(g);
  svc.apply(Mutation::insert_edge(0, 200));
  auto s = svc.snapshot();
  ASSERT_EQ(s->capacity, svc.graph().capacity());
  for (NodeId v = 0; v < s->capacity; ++v) {
    ASSERT_EQ(s->alive(v), svc.alive(v));
    if (!svc.alive(v)) continue;
    EXPECT_EQ(s->color(v), svc.color_of(v));
    auto sp = s->palette(v);
    auto dp = svc.palette_of(v);
    ASSERT_TRUE(std::equal(sp.begin(), sp.end(), dp.begin(), dp.end()));
    auto sn = s->neighbors(v);
    auto dn = svc.graph().neighbors(v);
    ASSERT_TRUE(std::equal(sn.begin(), sn.end(), dn.begin(), dn.end()));
  }
  EXPECT_EQ(s->colors_used, svc.query_colors_used());
}

TEST(Snapshot, IncrementalPublishReusesUntouchedChunks) {
  // 3000 nodes = 3 chunks (1024 + 1024 + 952). A delta confined to
  // chunk 0 must republish chunk 0 only and share the other two with
  // the previous snapshot by pointer.
  Graph g = gen::gnp(3000, 0.002, 107);
  ColoringService svc(g);
  auto before = svc.snapshot();
  ASSERT_EQ(before->chunks.size(), 3u);

  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId u = 0; u < 1024 && a == kInvalidNode; ++u)
    for (NodeId v = u + 1; v < 1024; ++v)
      if (svc.color_of(u) == svc.color_of(v) && !svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidNode);
  const std::uint64_t rebuilt0 = svc.stats().snapshot_chunks_rebuilt;
  MutationResult r = svc.apply(Mutation::insert_edge(a, b));
  ASSERT_TRUE(r.valid);
  auto after = svc.snapshot();
  ASSERT_EQ(after->chunks.size(), 3u);
  EXPECT_NE(after->chunks[0].get(), before->chunks[0].get());
  EXPECT_EQ(after->chunks[1].get(), before->chunks[1].get());
  EXPECT_EQ(after->chunks[2].get(), before->chunks[2].get());
  EXPECT_EQ(svc.stats().snapshot_chunks_rebuilt, rebuilt0 + 1);
  EXPECT_TRUE(after->validate());
}

TEST(Snapshot, HeldSnapshotStaysConsistentAcrossLaterBatches) {
  Graph g = gen::gnp(300, 0.03, 109);
  ColoringService svc(g);
  auto held = svc.snapshot();
  std::vector<Color> held_copy;
  for (NodeId v = 0; v < held->capacity; ++v)
    held_copy.push_back(held->color(v));

  std::mt19937_64 rng(11);
  std::vector<Mutation> batch;
  for (int i = 0; i < 10; ++i) {
    NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    if (u != v) batch.push_back(Mutation::insert_edge(u, v));
  }
  batch.push_back(Mutation::delete_vertex(7));
  batch.push_back(Mutation::insert_vertex());
  ASSERT_TRUE(svc.apply_batch(batch).valid);

  // The old epoch is frozen: same colors, same census, still proper.
  EXPECT_TRUE(held->validate());
  EXPECT_TRUE(held->alive(7));
  EXPECT_EQ(held->capacity, g.num_nodes());
  for (NodeId v = 0; v < held->capacity; ++v)
    EXPECT_EQ(held->color(v), held_copy[v]);
  // And the live snapshot moved on.
  auto now = svc.snapshot();
  EXPECT_GT(now->epoch, held->epoch);
  EXPECT_FALSE(now->alive(7));
  EXPECT_EQ(now->capacity, g.num_nodes() + 1);
}

// ---- Palette compaction after delete churn. ----

TEST(Service, PaletteCompactionAfterDeleteChurn) {
  // K40 needs 40 colors; stripping it down to a path leaves maxdeg 2
  // but the census stuck at 40 — far past slack 4, so the batch that
  // strips the edges must trigger a compaction pass.
  Graph g = gen::complete(40);
  ServiceConfig cfg;
  cfg.compaction_slack = 4;
  ColoringService svc(g, cfg);
  auto held = svc.snapshot();
  EXPECT_EQ(held->colors_used, 40u);

  std::vector<Mutation> strip;
  for (NodeId u = 0; u < 40; ++u)
    for (NodeId v = u + 1; v < 40; ++v)
      if (v != u + 1) strip.push_back(Mutation::delete_edge(u, v));
  MutationResult r = svc.apply_batch(strip);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.compacted);
  EXPECT_EQ(svc.stats().compactions, 1u);

  auto now = svc.snapshot();
  EXPECT_EQ(now->max_degree, 2u);
  EXPECT_LE(now->colors_used, 3u);  // path: maxdeg+1 bound
  EXPECT_TRUE(now->validate());
  expect_invariant(svc, "after compaction");
  // Palettes shrank back to exactly degree+1.
  for (NodeId v = 0; v < 40; ++v)
    EXPECT_EQ(svc.palette_of(v).size(),
              static_cast<std::size_t>(svc.graph().degree(v)) + 1);
  // The pre-compaction epoch a reader might still hold is untouched.
  EXPECT_TRUE(held->validate());
  EXPECT_EQ(held->colors_used, 40u);
}

TEST(Service, CompactionCanBeDisabled) {
  Graph g = gen::complete(30);
  ServiceConfig cfg;
  cfg.compaction_slack = service::kCompactionDisabled;
  ColoringService svc(g, cfg);
  std::vector<Mutation> strip;
  for (NodeId u = 0; u < 30; ++u)
    for (NodeId v = u + 1; v < 30; ++v)
      if (v != u + 1) strip.push_back(Mutation::delete_edge(u, v));
  MutationResult r = svc.apply_batch(strip);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.compacted);
  EXPECT_EQ(svc.stats().compactions, 0u);
  EXPECT_EQ(svc.query_colors_used(), 30u);  // census stays stranded
  expect_invariant(svc, "compaction disabled");
}

// ---- Batcher sessions and read modes. ----

TEST(Batcher, SessionsIsolatePendingBuffersAndReadModes) {
  Graph g = gen::gnp(200, 0.03, 113);
  ColoringService svc(g);
  service::Batcher front(svc, 100);
  auto s1 = front.open_session();
  auto s2 = front.open_session();
  const std::uint64_t batches0 = svc.stats().batches;

  s1.enqueue(Mutation::insert_edge(0, 50));
  s2.enqueue(Mutation::insert_edge(1, 60));
  EXPECT_EQ(s1.pending(), 1u);
  EXPECT_EQ(s2.pending(), 1u);
  EXPECT_EQ(front.pending_total(), 2u);

  // Snapshot-mode reads flush NOTHING — not even the caller's buffer.
  s2.query_validate(ReadMode::kSnapshot);
  s2.query_colors_used(ReadMode::kSnapshot);
  EXPECT_EQ(s1.pending(), 1u);
  EXPECT_EQ(s2.pending(), 1u);
  EXPECT_EQ(svc.stats().batches, batches0);

  // A fresh read flushes the calling session ONLY: s1's pending write
  // stays buffered, unlike the old drain-the-world behavior.
  s2.query_color(1, ReadMode::kFresh);
  EXPECT_EQ(s2.pending(), 0u);
  EXPECT_EQ(s1.pending(), 1u);
  EXPECT_EQ(svc.stats().batches, batches0 + 1);
  EXPECT_GT(s2.last_flushed_seq(), 0u);
  EXPECT_EQ(s1.last_flushed_seq(), 0u);

  // Read-your-writes: the session's read snapshot is at least as new
  // as its last flush.
  auto r1 = s1.flush();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(s1.last_flushed_seq(), r1->batch_seq);
  auto snap = s1.read_snapshot(ReadMode::kFresh);
  EXPECT_GE(snap->batch_seq, s1.last_flushed_seq());
  EXPECT_EQ(front.pending_total(), 0u);
  expect_invariant(svc, "after session flushes");
}

// ---- Concurrent readers vs writer (the TSan target). ----

TEST(ServiceConcurrency, ReadersObserveProperColoringsUnderWriterChurn) {
  Graph g = gen::gnp(300, 0.03, 127);
  ColoringService svc(g);
  service::Batcher front(svc, 100);

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 1500;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> stale_reads{0};

  std::vector<std::thread> pool;
  pool.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    pool.emplace_back([&, t]() {
      auto session = front.open_session();
      std::mt19937_64 rng(0x5eed + t);
      for (int i = 0; i < kReadsPerReader && !stop.load(); ++i) {
        auto snap = session.read_snapshot(ReadMode::kSnapshot);
        if ((i & 127) == 0) {
          // Periodic full check: the snapshot is a complete proper
          // in-palette coloring, whatever the writer is mid-way
          // through.
          if (!snap->validate()) ++violations;
        } else {
          const NodeId v = static_cast<NodeId>(rng() % snap->capacity);
          if (snap->alive(v)) {
            const Color c = snap->color(v);
            if (c == kNoColor) ++violations;
            for (NodeId u : snap->neighbors(v))
              if (snap->color(u) == c) ++violations;
          }
        }
        if (snap->epoch < 1) ++stale_reads;
        ++reads;
      }
    });
  }

  // Writer churn on the main thread: randomized batches through its
  // own session, asserting read-your-writes after every flush.
  auto writer = front.open_session();
  std::mt19937_64 rng(2026);
  for (int b = 0; b < 12; ++b) {
    const std::size_t k = 1 + rng() % 4;
    for (std::size_t i = 0; i < k; ++i) {
      NodeId u = static_cast<NodeId>(rng() % g.num_nodes());
      NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
      if (u == v) continue;
      if (rng() % 4 == 0)
        writer.enqueue(Mutation::delete_edge(u, v));
      else
        writer.enqueue(Mutation::insert_edge(u, v));
    }
    auto r = writer.flush();
    if (r.has_value()) {
      ASSERT_TRUE(r->valid) << "batch " << b;
      auto snap = writer.read_snapshot(ReadMode::kSnapshot);
      EXPECT_GE(snap->batch_seq, r->batch_seq);
      EXPECT_GE(snap->batch_seq, writer.last_flushed_seq());
    }
  }
  stop.store(true);
  for (auto& th : pool) th.join();

  EXPECT_EQ(violations.load(), 0u)
      << "a reader observed a torn or improper coloring";
  EXPECT_EQ(stale_reads.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  expect_invariant(svc, "after concurrent churn");
}

}  // namespace
}  // namespace pdc
