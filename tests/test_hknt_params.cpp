// Tests for the Definition-2 parameter computations on graphs with
// closed-form values (cliques, stars, cycles) plus consistency
// properties on random graphs.

#include <gtest/gtest.h>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/params.hpp"

namespace pdc::hknt {
namespace {

TEST(Params, CompleteGraphHasZeroSparsity) {
  Graph g = gen::complete(10);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(p.sparsity[v], 0.0);
    EXPECT_EQ(p.nbhd_edges[v], 36u);  // K9 among the neighbors
    EXPECT_EQ(p.slack[v], 1);
    EXPECT_DOUBLE_EQ(p.unevenness[v], 0.0);  // all degrees equal
  }
}

TEST(Params, CycleSparsityIsHalfDegreeScale) {
  // In C_n (n >= 5), v's two neighbors are non-adjacent: m(N(v)) = 0,
  // pairs = 1, ζ = 1/2.
  Graph g = gen::cycle(8);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  for (NodeId v = 0; v < 8; ++v) EXPECT_DOUBLE_EQ(p.sparsity[v], 0.5);
}

TEST(Params, StarLeavesAreMaximallyUneven) {
  const NodeId n = 12;
  Graph g = gen::star(n);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  // Leaf: one neighbor (hub) of degree n-1: η = (n-1-1)/n.
  const double expect = static_cast<double>(n - 2) / n;
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_NEAR(p.unevenness[v], expect, 1e-12);
    EXPECT_DOUBLE_EQ(p.sparsity[v], 0.0);  // single neighbor: no pairs
  }
  EXPECT_DOUBLE_EQ(p.unevenness[0], 0.0);  // hub sees only lower degrees
}

TEST(Params, DisparityIdenticalPalettesIsZero) {
  Graph g = gen::complete(4);
  D1lcInstance inst = make_delta_plus_one(g);  // identical palettes
  NodeParams p = compute_params(inst, nullptr);
  for (NodeId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(p.discrepancy[v], 0.0);
  EXPECT_DOUBLE_EQ(disparity(inst.palettes, 0, 1), 0.0);
}

TEST(Params, DisparityDisjointPalettesIsOne) {
  Graph g = Graph::from_edges(2, {{0, 1}});
  PaletteSet pal = PaletteSet::from_lists({{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(disparity(pal, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(disparity(pal, 1, 0), 1.0);
}

TEST(Params, SlackabilityIsSumOfParts) {
  Graph g = gen::gnp(150, 0.05, 3);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 20, 2, 5);
  NodeParams p = compute_params(inst, nullptr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(p.slackability[v], p.discrepancy[v] + p.sparsity[v]);
    EXPECT_DOUBLE_EQ(p.strong_slackability[v],
                     p.unevenness[v] + p.sparsity[v]);
    // Bounds: 0 <= ζ_v <= d(v)/2 + small; 0 <= η̄_v <= d(v).
    const double dv = g.degree(v);
    EXPECT_GE(p.sparsity[v], 0.0);
    EXPECT_LE(p.sparsity[v], dv / 2.0 + 1e-9);
    EXPECT_GE(p.discrepancy[v], 0.0);
    EXPECT_LE(p.discrepancy[v], dv + 1e-9);
    EXPECT_GE(p.unevenness[v], 0.0);
    EXPECT_LE(p.unevenness[v], dv + 1e-9);
  }
}

TEST(Params, SparseGnpIsSparseDenseCliqueIsNot) {
  // G(n, p) with small p: neighbors rarely adjacent => ζ_v near d(v)/2.
  Graph g = gen::gnp(400, 0.02, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  NodeParams p = compute_params(inst, nullptr);
  std::uint64_t sparse_enough = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 4 &&
        p.sparsity[v] >= 0.3 * static_cast<double>(g.degree(v)))
      ++sparse_enough;
  }
  EXPECT_GT(sparse_enough, g.num_nodes() / 2);
}

TEST(Params, ChargesConstantRoundsWhenCostModelGiven) {
  Graph g = gen::gnp(100, 0.05, 3);
  D1lcInstance inst = make_degree_plus_one(g);
  mpc::Config cfg = mpc::Config::sublinear(100, 0.75, 10'000, 8.0);
  mpc::Ledger ledger;
  mpc::CostModel cost(cfg, ledger);
  compute_params(inst, &cost);
  EXPECT_GT(ledger.rounds(), 0u);
  EXPECT_LE(ledger.rounds(), 16u);  // O(1) in the model
  EXPECT_TRUE(ledger.violations().empty());  // Δ <= sqrt(s) holds here
}

}  // namespace
}  // namespace pdc::hknt
