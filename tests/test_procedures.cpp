// Tests for the HKNT22 subroutines as normal procedures: conflict
// freedom (a property over many random sources), SSP semantics, sampling
// behavior, SynchColorTrial distinctness, PutAside's cross-clique
// independence, and the SlackColor schedule shape.

#include <gtest/gtest.h>

#include <set>

#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/hknt/slack_color.hpp"

namespace pdc::hknt {
namespace {

using derand::ColoringState;

struct Fixture {
  D1lcInstance inst;
  HkntConfig cfg;

  explicit Fixture(Graph g, std::uint32_t extra = 8)
      : inst(make_random_lists(g, static_cast<Color>(g.max_degree()) + 40,
                               extra, 77)) {}
};

/// Property: simulate() never proposes a monochromatic edge, over many
/// random sources. Parameterized across procedures via a factory.
class ConflictFreedom
    : public ::testing::TestWithParam<int> {};  // param = master seed

TEST_P(ConflictFreedom, TryRandomColorAndMultiTrial) {
  Fixture f(gen::gnp(250, 0.04, 5));
  ColoringState state(f.inst.graph, f.inst.palettes);
  prg::TrueRandomSource src(GetParam());

  TryRandomColorProc trc(f.cfg, TryRandomColorProc::Ssp::kNone, "p");
  auto run1 = trc.simulate(state, src);
  MultiTrialProc mt(f.cfg, 4, 2.0, false, "p");
  auto run2 = mt.simulate(state, src);

  for (const auto* run : {&run1, &run2}) {
    for (NodeId v = 0; v < state.num_nodes(); ++v) {
      if (run->proposed[v] == kNoColor) continue;
      EXPECT_TRUE(f.inst.palettes.contains(v, run->proposed[v]));
      for (NodeId u : f.inst.graph.neighbors(v)) {
        EXPECT_NE(run->proposed[u], run->proposed[v])
            << "conflict on edge (" << v << "," << u << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictFreedom,
                         ::testing::Range(1, 13));

TEST(TryRandomColor, ColorsLargeFractionWithAmpleSlack) {
  Fixture f(gen::gnp(500, 0.02, 3), /*extra=*/30);
  ColoringState state(f.inst.graph, f.inst.palettes);
  prg::TrueRandomSource src(9);
  TryRandomColorProc trc(f.cfg, TryRandomColorProc::Ssp::kNone, "t");
  auto run = trc.simulate(state, src);
  std::uint64_t colored = 0;
  for (auto c : run.proposed) colored += (c != kNoColor);
  EXPECT_GT(colored, 400u);  // sparse graph, big palettes: most succeed
}

TEST(GenerateSlack, SamplesRoughlyOneTenth) {
  Fixture f(gen::gnp(2000, 0.01, 3));
  ColoringState state(f.inst.graph, f.inst.palettes);
  NodeParams p = compute_params(f.inst, nullptr);
  GenerateSlackProc gs(f.cfg, p, "t");
  prg::TrueRandomSource src(4);
  auto run = gs.simulate(state, src);
  std::uint64_t sampled = 0;
  for (auto a : run.aux) sampled += (a == 1);
  EXPECT_NEAR(static_cast<double>(sampled) / 2000.0, 0.1, 0.03);
  // Only sampled nodes propose colors.
  for (NodeId v = 0; v < 2000; ++v)
    if (run.proposed[v] != kNoColor) {
      EXPECT_EQ(run.aux[v], 1);
    }
}

TEST(GenerateSlack, SspHoldsForMostSparseNodes) {
  Graph g = gen::gnp(800, 0.03, 6);
  D1lcInstance inst = make_degree_plus_one(g);
  HkntConfig cfg;
  ColoringState state(inst.graph, inst.palettes);
  NodeParams p = compute_params(inst, nullptr);
  GenerateSlackProc gs(cfg, p, "t");
  prg::TrueRandomSource src(11);
  auto run = gs.simulate(state, src);
  std::uint64_t ok = 0, considered = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) < cfg.low_degree(g.num_nodes())) continue;
    ++considered;
    ok += gs.ssp(state, run, v);
  }
  ASSERT_GT(considered, 100u);
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(considered), 0.9);
}

TEST(MultiTrial, XCapsAtAvailablePalette) {
  Graph g = gen::complete(5);
  D1lcInstance inst = make_degree_plus_one(g);
  HkntConfig cfg;
  ColoringState state(inst.graph, inst.palettes);
  MultiTrialProc mt(cfg, 100, 1.0, false, "cap");
  prg::TrueRandomSource src(2);
  auto run = mt.simulate(state, src);
  // With palettes of size 5 shared by a K5, exactly... at least one node
  // must fail (everyone sampled the whole palette), and no conflicts.
  std::set<Color> used;
  for (NodeId v = 0; v < 5; ++v) {
    if (run.proposed[v] != kNoColor) {
      EXPECT_FALSE(used.count(run.proposed[v]));
      used.insert(run.proposed[v]);
    }
  }
}

TEST(MultiTrial, FinalRoundSspRequiresColored) {
  Fixture f(gen::gnp(100, 0.05, 3));
  ColoringState state(f.inst.graph, f.inst.palettes);
  MultiTrialProc mt(f.cfg, 4, 1.0, /*final=*/true, "fin");
  prg::TrueRandomSource src(8);
  auto run = mt.simulate(state, src);
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (f.inst.graph.degree(v) < f.cfg.low_degree(state.num_nodes()))
      continue;
    EXPECT_EQ(mt.ssp(state, run, v), run.proposed[v] != kNoColor);
  }
}

// ---- Dense procedures on planted cliques. ----

struct DenseFixture {
  D1lcInstance inst;
  HkntConfig cfg;
  NodeParams params;
  Acd acd;
  DenseStructure ds;

  DenseFixture()
      : inst(make_degree_plus_one(
            gen::planted_cliques(5, 16, 0.3, 21).graph)) {
    params = compute_params(inst, nullptr);
    acd = compute_acd(inst, params, cfg, nullptr);
    ds = compute_dense_structure(inst, params, acd, cfg, nullptr);
  }
};

TEST(SynchColorTrial, WithinCliqueCandidatesDistinctAndValid) {
  DenseFixture f;
  ColoringState state(f.inst.graph, f.inst.palettes);
  SynchColorTrialProc sct(f.cfg, f.acd, f.ds);
  prg::TrueRandomSource src(6);
  auto run = sct.simulate(state, src);
  // Proposals are palette-valid and conflict-free.
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (run.proposed[v] == kNoColor) continue;
    EXPECT_TRUE(f.inst.palettes.contains(v, run.proposed[v]));
    for (NodeId u : f.inst.graph.neighbors(v))
      EXPECT_NE(run.proposed[u], run.proposed[v]);
  }
  // Most inliers of each clique got colored (leader palettes ≈ member
  // palettes for degree+1 instances on planted cliques).
  for (std::uint32_t c = 0; c < f.acd.num_cliques; ++c) {
    std::uint64_t inliers = 0, colored = 0;
    for (NodeId v : f.acd.cliques[c]) {
      if (!f.ds.inlier[v]) continue;
      ++inliers;
      colored += (run.proposed[v] != kNoColor);
    }
    EXPECT_GT(colored * 2, inliers) << "clique " << c;
  }
}

TEST(PutAside, SetsAreCrossCliqueIndependent) {
  DenseFixture f;
  ColoringState state(f.inst.graph, f.inst.palettes);
  PutAsideProc pa(f.cfg, f.acd, f.ds);
  prg::TrueRandomSource src(14);
  auto run = pa.simulate(state, src);
  // Nobody gets colored by PutAside.
  for (auto c : run.proposed) EXPECT_EQ(c, kNoColor);
  // P members from different cliques are never adjacent.
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (run.aux[v] != PutAsideProc::kInP) continue;
    for (NodeId u : f.inst.graph.neighbors(v)) {
      if (run.aux[u] == PutAsideProc::kInP) {
        EXPECT_EQ(f.acd.clique_of[u], f.acd.clique_of[v]);
      }
    }
  }
}

TEST(PutAside, CommitWritesMaskRespectingDefer) {
  DenseFixture f;
  ColoringState state(f.inst.graph, f.inst.palettes);
  PutAsideProc pa(f.cfg, f.acd, f.ds);
  prg::TrueRandomSource src(14);
  auto run = pa.simulate(state, src);
  std::vector<std::uint8_t> defer(state.num_nodes(), 0);
  // Defer the first P member found; it must not enter the mask.
  NodeId deferred_node = kInvalidNode;
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    if (run.aux[v] == PutAsideProc::kInP) {
      defer[v] = 1;
      deferred_node = v;
      break;
    }
  }
  pa.commit(state, run, defer);
  if (deferred_node != kInvalidNode) {
    EXPECT_EQ(f.ds.put_aside[deferred_node], 0);
  }
  std::uint64_t in_mask = f.ds.count_put_aside();
  std::uint64_t in_run = 0;
  for (auto a : run.aux) in_run += (a == PutAsideProc::kInP);
  EXPECT_EQ(in_mask + (deferred_node != kInvalidNode ? 1 : 0), in_run);
}

// ---- SlackColor schedule shape. ----

TEST(SlackColor, ScheduleShapeTracksPaper) {
  Graph g = gen::gnp(300, 0.03, 5);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 80, 25, 9);
  HkntConfig cfg;
  ColoringState state(inst.graph, inst.palettes);
  SlackColorSchedule sched = make_slack_color(state, cfg, "t");
  EXPECT_GE(sched.smin, 20);  // extra = 25 colors of slack
  // Schedule = amplify + 2*(log*ρ+1) + 3*ceil(1/κ) + 1 steps.
  const int expect = cfg.amplify_rounds +
                     2 * (log_star_of(sched.rho) + 1) +
                     3 * static_cast<int>(std::ceil(1.0 / cfg.kappa)) + 1;
  EXPECT_EQ(static_cast<int>(sched.steps.size()), expect);
  // First steps are TryRandomColor, last is a final MultiTrial.
  EXPECT_NE(sched.steps.front()->name().find("TryRandomColor"),
            std::string::npos);
  EXPECT_NE(sched.steps.back()->name().find("final"), std::string::npos);
}

TEST(SlackColor, TowerFunctionValues) {
  EXPECT_EQ(tower(0, 1u << 20), 1u);
  EXPECT_EQ(tower(1, 1u << 20), 2u);
  EXPECT_EQ(tower(2, 1u << 20), 4u);
  EXPECT_EQ(tower(3, 1u << 20), 16u);
  EXPECT_EQ(tower(4, 1u << 20), 65536u);
  EXPECT_EQ(tower(4, 512), 512u);  // saturation
  EXPECT_EQ(log_star_of(1.0), 0);
  EXPECT_EQ(log_star_of(2.0), 1);
  EXPECT_EQ(log_star_of(16.0), 3);
  EXPECT_EQ(log_star_of(65536.0), 4);
}

TEST(SlackColor, EmptyParticipantsYieldDegenerateButSafeSchedule) {
  Graph g = gen::gnp(50, 0.05, 3);
  D1lcInstance inst = make_degree_plus_one(g);
  HkntConfig cfg;
  ColoringState state(inst.graph, inst.palettes);
  state.set_active(std::vector<NodeId>{});  // nobody participates
  SlackColorSchedule sched = make_slack_color(state, cfg, "empty");
  EXPECT_EQ(sched.smin, 1);
  EXPECT_FALSE(sched.steps.empty());
}

}  // namespace
}  // namespace pdc::hknt
