// Tests for the baselines: greedy (all orders), Jones–Plassmann, Luby
// MIS randomized + derandomized, and Linial's deterministic coloring.

#include <gtest/gtest.h>

#include "pdc/baseline/greedy.hpp"
#include "pdc/baseline/jones_plassmann.hpp"
#include "pdc/baseline/linial.hpp"
#include "pdc/baseline/luby.hpp"
#include "pdc/graph/generators.hpp"

namespace pdc::baseline {
namespace {

class GreedyOrderTest : public ::testing::TestWithParam<GreedyOrder> {};

TEST_P(GreedyOrderTest, ProducesCompleteProperColorings) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = gen::gnp(400, 0.03, seed);
    D1lcInstance inst = make_degree_plus_one(g);
    Coloring c = greedy_d1lc(inst, GetParam());
    EXPECT_TRUE(check_coloring(inst, c).complete_proper());
  }
}

TEST_P(GreedyOrderTest, WorksOnListInstances) {
  Graph g = gen::core_periphery(300, 30, 0.03, 2.0, 5);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 20, 2, 7);
  Coloring c = greedy_d1lc(inst, GetParam());
  EXPECT_TRUE(check_coloring(inst, c).complete_proper());
}

INSTANTIATE_TEST_SUITE_P(Orders, GreedyOrderTest,
                         ::testing::Values(GreedyOrder::kIndex,
                                           GreedyOrder::kDegreeDesc,
                                           GreedyOrder::kDegeneracy));

TEST(Greedy, DegeneracyOrderPeelsCorrectly) {
  // A tree has degeneracy 1: smallest-last order must color with <= 2
  // colors under (deg+1) lists ... greedy on degeneracy order uses at
  // most degeneracy+1 distinct colors for identical palettes.
  Graph g = gen::grid(1, 50);  // path: degeneracy 1
  D1lcInstance inst = make_delta_plus_one(g);
  Coloring c = greedy_d1lc(inst, GreedyOrder::kDegeneracy);
  EXPECT_TRUE(check_coloring(inst, c).complete_proper());
  EXPECT_LE(count_colors_used(c), 2u);
}

TEST(Greedy, CompletesPartialColorings) {
  Graph g = gen::gnp(200, 0.05, 4);
  D1lcInstance inst = make_degree_plus_one(g);
  Coloring c(g.num_nodes(), kNoColor);
  c[0] = inst.palettes.palette(0)[0];
  greedy_complete_partial(inst, c);
  EXPECT_TRUE(check_coloring(inst, c).complete_proper());
  EXPECT_EQ(c[0], inst.palettes.palette(0)[0]);  // untouched
}

TEST(JonesPlassmann, ColorsEveryInstanceProperly) {
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    Graph g = gen::gnp(500, 0.02, seed);
    D1lcInstance inst = make_degree_plus_one(g);
    auto r = jones_plassmann(inst, seed);
    EXPECT_TRUE(check_coloring(inst, r.coloring).complete_proper());
    EXPECT_GT(r.rounds, 0u);
    EXPECT_LT(r.rounds, 100u);  // O(log n) w.h.p.
  }
}

// ---- Luby MIS. ----

class LubyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubyTest, RandomizedProducesValidMis) {
  Graph g = gen::gnp(400, 0.03, GetParam());
  MisResult r = luby_mis(g, GetParam());
  auto [indep, maximal] = check_mis(g, r.in_mis);
  EXPECT_TRUE(indep);
  EXPECT_TRUE(maximal);
  EXPECT_LT(r.rounds, 60u);  // O(log n) w.h.p.
}

TEST_P(LubyTest, DerandomizedProducesValidMis) {
  Graph g = gen::gnp(250, 0.03, GetParam());
  derand::Lemma10Options opt;
  opt.seed_bits = 5;
  MisResult r = luby_mis_derandomized(g, opt, /*max_rounds=*/24);
  auto [indep, maximal] = check_mis(g, r.in_mis);
  EXPECT_TRUE(indep);
  EXPECT_TRUE(maximal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyTest, ::testing::Values(1, 2, 3, 4));

TEST(Luby, DerandomizedIsDeterministic) {
  Graph g = gen::gnp(200, 0.04, 6);
  derand::Lemma10Options opt;
  opt.seed_bits = 5;
  MisResult a = luby_mis_derandomized(g, opt, 16);
  MisResult b = luby_mis_derandomized(g, opt, 16);
  EXPECT_EQ(a.in_mis, b.in_mis);
}

TEST(Luby, UndecidedFractionDecaysPerRound) {
  Graph g = gen::gnp(800, 0.02, 8);
  MisResult r = luby_mis(g, 3);
  ASSERT_GE(r.undecided_after_round.size(), 2u);
  // Undecided counts are non-increasing and end at zero.
  for (std::size_t i = 1; i < r.undecided_after_round.size(); ++i)
    EXPECT_LE(r.undecided_after_round[i], r.undecided_after_round[i - 1]);
  EXPECT_DOUBLE_EQ(r.undecided_after_round.back(), 0.0);
}

TEST(Luby, EdgeCases) {
  // Empty graph: everyone joins.
  Graph g0 = Graph::from_edges(5, {});
  MisResult r0 = luby_mis(g0, 1);
  for (auto b : r0.in_mis) EXPECT_EQ(b, 1);
  // Complete graph: exactly one joins.
  Graph g1 = gen::complete(8);
  MisResult r1 = luby_mis(g1, 1);
  int members = 0;
  for (auto b : r1.in_mis) members += b;
  EXPECT_EQ(members, 1);
}

// ---- Linial. ----

class LinialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinialTest, ProperWithPolyDeltaColorsInLogStarRounds) {
  Graph g = gen::near_regular(500, 6, GetParam());
  LinialResult r = linial_coloring(g);
  EXPECT_EQ(check_coloring(g, r.coloring, nullptr).monochromatic_edges, 0u);
  // Color count shrank from n to poly(Δ) territory.
  EXPECT_LT(r.num_colors, 200u);  // q^2 with q = O(Δ k)
  EXPECT_LE(r.rounds, 6u);        // log* 500 plus slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinialTest, ::testing::Values(1, 2, 3));

TEST(Linial, NextPrimeBasics) {
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(17), 17u);
  EXPECT_EQ(next_prime(90), 97u);
}

TEST(Linial, HandlesEdgelessAndTinyGraphs) {
  Graph g = Graph::from_edges(4, {});
  LinialResult r = linial_coloring(g);
  EXPECT_EQ(check_coloring(g, r.coloring, nullptr).monochromatic_edges, 0u);
  EXPECT_LE(r.num_colors, 4u);
}

}  // namespace
}  // namespace pdc::baseline
