// Tests for the application layer: line graphs, (2Δ-1)-edge-coloring,
// degree-range scheduling, and the LOCAL-engine reference trials
// cross-checked against the array-based procedure semantics.

#include <gtest/gtest.h>

#include "pdc/apps/edge_coloring.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/degree_ranges.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/local/reference.hpp"

namespace pdc {
namespace {

// ---- Line graph & edge coloring. ----

TEST(LineGraph, TriangleBecomesTriangle) {
  Graph g = gen::complete(3);
  apps::LineGraph lg = apps::build_line_graph(g);
  EXPECT_EQ(lg.graph.num_nodes(), 3u);
  EXPECT_EQ(lg.graph.num_edges(), 3u);
}

TEST(LineGraph, StarBecomesClique) {
  Graph g = gen::star(6);  // 5 edges all sharing the hub
  apps::LineGraph lg = apps::build_line_graph(g);
  EXPECT_EQ(lg.graph.num_nodes(), 5u);
  EXPECT_EQ(lg.graph.num_edges(), 10u);  // K5
}

TEST(LineGraph, PathDegreesMatchSharedEndpoints) {
  Graph g = gen::grid(1, 5);  // path with 4 edges
  apps::LineGraph lg = apps::build_line_graph(g);
  EXPECT_EQ(lg.graph.num_nodes(), 4u);
  EXPECT_EQ(lg.graph.num_edges(), 3u);  // a path in the line graph
}

TEST(EdgeColoring, InstanceIsValidD1lc) {
  Graph g = gen::gnp(150, 0.05, 3);
  apps::LineGraph lg = apps::build_line_graph(g);
  D1lcInstance inst = apps::edge_coloring_instance(lg, g);
  EXPECT_TRUE(inst.valid());
  // Palette of edge uv has size deg(u)+deg(v)-1 = line-degree + 1.
  for (NodeId e = 0; e < lg.graph.num_nodes(); ++e) {
    auto [u, v] = lg.edge_endpoints[e];
    EXPECT_EQ(inst.palettes.size(e), g.degree(u) + g.degree(v) - 1);
  }
}

class EdgeColoringMode : public ::testing::TestWithParam<d1lc::Mode> {};

TEST_P(EdgeColoringMode, ProperWithin2DeltaMinus1) {
  Graph g = gen::gnp(120, 0.05, 7);
  d1lc::SolverOptions opt;
  opt.mode = GetParam();
  opt.l10.seed_bits = 4;
  apps::EdgeColoringResult r = apps::edge_color(g, opt);
  EXPECT_TRUE(r.valid);
  EXPECT_LE(r.colors_used, 2ull * g.max_degree() - 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, EdgeColoringMode,
                         ::testing::Values(d1lc::Mode::kDeterministic,
                                           d1lc::Mode::kRandomized));

TEST(EdgeColoring, CheckerCatchesViolations) {
  Graph g = gen::complete(4);
  apps::LineGraph lg = apps::build_line_graph(g);
  std::vector<Color> colors(lg.edge_endpoints.size(), 0);  // all same slot
  EXPECT_FALSE(apps::check_edge_coloring(g, lg.edge_endpoints, colors));
}

// ---- Degree-range scheduling. ----

TEST(DegreeRanges, ThresholdsDescendToFloor) {
  hknt::RangeScheduleOptions opt;
  auto t = hknt::degree_range_thresholds(100'000, opt);
  ASSERT_GE(t.size(), 2u);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i], t[i - 1]);
  EXPECT_EQ(t.back(), opt.floor);
  EXPECT_LE(t.size(), 10u);  // O(log* n) ranges
}

TEST(DegreeRanges, SchedulerColorsByRangeAndStaysValid) {
  Graph g = gen::preferential_attachment(1200, 4, 11);  // skewed degrees
  D1lcInstance inst = make_degree_plus_one(g);
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::MiddleOptions mo;
  mo.l10.strategy = derand::SeedStrategy::kTrueRandom;
  mo.l10.defer_failures = false;
  mo.l10.true_random_seed = 5;
  hknt::RangeScheduleOptions ro;
  auto rep = hknt::color_by_degree_ranges(state, inst, mo, ro, nullptr);
  EXPECT_GE(rep.ranges.size(), 1u);
  // Range node counts partition the (high-degree) nodes.
  std::uint64_t range_nodes = 0;
  for (const auto& r : rep.ranges) {
    EXPECT_LT(r.lo, r.hi);
    range_nodes += r.nodes;
  }
  std::uint64_t high = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    high += (g.degree(v) >= ro.floor);
  EXPECT_EQ(range_nodes, high);
  // Committed colors proper.
  auto check = check_coloring(inst, state.colors());
  EXPECT_EQ(check.monochromatic_edges, 0u);
  EXPECT_EQ(check.palette_violations, 0u);
  EXPECT_GT(rep.colored, high / 2);
}

// ---- LOCAL-engine reference trials vs array semantics. ----

TEST(Reference, TryRandomColorIsConflictFreeAndProductive) {
  Graph g = gen::gnp(300, 0.03, 9);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 40, 15, 3);
  Coloring none(g.num_nodes(), kNoColor);
  auto ref = local::try_random_color_local(g, inst.palettes, none, 21);
  EXPECT_EQ(ref.engine_rounds, 3u);
  std::uint64_t committed = 0;
  std::vector<NodeId> committed_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ref.committed[v] == kNoColor) continue;
    ++committed;
    committed_nodes.push_back(v);
  }
  EXPECT_TRUE(
      validate_partial(g, ref.committed, committed_nodes, &inst.palettes));
  // Cross-check: success rate within 10 points of the array simulation
  // (same algorithm, independent randomness).
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(cfg, hknt::TryRandomColorProc::Ssp::kNone,
                                "xcheck");
  prg::TrueRandomSource src(22);
  auto run = proc.simulate(state, src);
  std::uint64_t array_committed = 0;
  for (auto c : run.proposed) array_committed += (c != kNoColor);
  double ref_rate = static_cast<double>(committed) / g.num_nodes();
  double arr_rate = static_cast<double>(array_committed) / g.num_nodes();
  EXPECT_NEAR(ref_rate, arr_rate, 0.10);
}

TEST(Reference, MultiTrialMatchesArraySemanticsStatistically) {
  Graph g = gen::gnp(300, 0.03, 13);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 30, 10, 5);
  Coloring none(g.num_nodes(), kNoColor);
  auto ref = local::multi_trial_local(g, inst.palettes, none, 4, 31);
  std::uint64_t committed = 0;
  std::vector<NodeId> committed_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ref.committed[v] == kNoColor) continue;
    ++committed;
    committed_nodes.push_back(v);
  }
  EXPECT_TRUE(validate_partial(g, ref.committed, committed_nodes));
  derand::ColoringState state(inst.graph, inst.palettes);
  hknt::HkntConfig cfg;
  hknt::MultiTrialProc proc(cfg, 4, 1.0, false, "xcheck");
  prg::TrueRandomSource src(32);
  auto run = proc.simulate(state, src);
  std::uint64_t array_committed = 0;
  for (auto c : run.proposed) array_committed += (c != kNoColor);
  EXPECT_NEAR(static_cast<double>(committed) / g.num_nodes(),
              static_cast<double>(array_committed) / g.num_nodes(), 0.10);
}

TEST(Reference, RespectsPrecoloredNeighbors) {
  Graph g = gen::star(10);
  D1lcInstance inst = make_degree_plus_one(g);
  Coloring partial(g.num_nodes(), kNoColor);
  partial[0] = 3;  // hub precolored
  auto ref = local::try_random_color_local(g, inst.palettes, partial, 5);
  for (NodeId v = 1; v < 10; ++v) {
    if (ref.committed[v] != kNoColor) {
      EXPECT_NE(ref.committed[v], 3);
    }
  }
  EXPECT_EQ(ref.committed[0], kNoColor);  // precolored nodes sit out
}

}  // namespace
}  // namespace pdc
