// Unit tests for the util substrate: RNG determinism, bit streams,
// k-wise hashing, statistics, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "pdc/util/bench_json.hpp"
#include "pdc/util/bits.hpp"
#include "pdc/util/check.hpp"
#include "pdc/util/hashing.hpp"
#include "pdc/util/parallel.hpp"
#include "pdc/util/rng.hpp"
#include "pdc/util/stats.hpp"
#include "pdc/util/table.hpp"

namespace pdc {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(
      { PDC_CHECK_MSG(1 == 2, "custom context " << 42); }, check_error);
  try {
    PDC_CHECK_MSG(false, "hello");
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("hello"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    EXPECT_LT(r.below(1), 1u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 r(123);
  std::map<std::uint64_t, int> hist;
  const int trials = 80'000;
  for (int i = 0; i < trials; ++i) ++hist[r.below(8)];
  for (auto& [k, c] : hist) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.125, 0.01) << "bucket " << k;
  }
}

TEST(Rng, SubstreamsAreIndependentish) {
  auto a = substream(9, 0);
  auto b = substream(9, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should change roughly half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    std::uint64_t x = 0x0123456789ABCDEFULL;
    int diff = __builtin_popcountll(mix64(x) ^ mix64(x ^ (1ULL << bit)));
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
  }
}

TEST(BitStream, SlicesWordsConsistently) {
  // Backing words are a known counter pattern; verify reconstruction.
  BitStream s([](std::uint64_t w) { return w + 1; });
  EXPECT_EQ(s.bits(64), 1u);
  EXPECT_EQ(s.bits(64), 2u);
  EXPECT_EQ(s.bits_consumed(), 128u);
}

TEST(BitStream, SmallDrawsConcatenateLowBitsFirst) {
  BitStream s([](std::uint64_t) { return 0b1011'0110ULL; });
  EXPECT_EQ(s.bits(4), 0b0110u);
  EXPECT_EQ(s.bits(4), 0b1011u);
}

TEST(BitStream, BelowInRangeAndDeterministic) {
  auto make = [] {
    return BitStream([](std::uint64_t w) { return mix64(w + 99); });
  };
  BitStream a = make(), b = make();
  for (int i = 0; i < 200; ++i) {
    auto va = a.below(13);
    EXPECT_LT(va, 13u);
    EXPECT_EQ(va, b.below(13));
  }
}

TEST(KWiseHash, DeterministicAndInField) {
  Xoshiro256 rng(5);
  KWiseHash h = KWiseHash::random(4, rng);
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h(x), h(x));
    EXPECT_LT(h(x), MersenneField::kPrime);
  }
}

TEST(KWiseHash, PairwiseIndependenceEmpirically) {
  // For random degree-1 (pairwise) polynomials, collisions of two fixed
  // points over random family members should be ~1/m for buckets m.
  Xoshiro256 rng(17);
  const std::uint64_t m = 16;
  int collisions = 0;
  const int fams = 4000;
  for (int f = 0; f < fams; ++f) {
    KWiseHash h = KWiseHash::random(2, rng);
    if (h.bucket(3, m) == h.bucket(77, m)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / fams, 1.0 / m, 0.02);
}

TEST(EnumerablePairwiseFamily, MembersDifferAndAreStable) {
  EnumerablePairwiseFamily fam(123, 6);
  EXPECT_EQ(fam.size(), 64u);
  std::set<std::pair<std::uint64_t, std::uint64_t>> distinct;
  for (std::uint64_t i = 0; i < fam.size(); ++i) distinct.insert(fam.params(i));
  EXPECT_GT(distinct.size(), 60u);
  EXPECT_EQ(fam.eval(5, 1000, 10), fam.eval(5, 1000, 10));
  EXPECT_LT(fam.eval(5, 1000, 10), 10u);
}

TEST(Parallel, CountAndSumMatchSerial) {
  const std::size_t n = 10'000;
  auto pred = [](std::size_t i) { return i % 3 == 0; };
  std::size_t serial = 0;
  for (std::size_t i = 0; i < n; ++i) serial += pred(i);
  EXPECT_EQ(parallel_count(n, pred), serial);
  double sum = parallel_sum(n, [](std::size_t i) { return double(i); });
  EXPECT_DOUBLE_EQ(sum, double(n) * (n - 1) / 2.0);
}

TEST(Summary, MatchesClosedForms) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Table, PrintsAlignedRowsAndRejectsBadWidth) {
  Table t("demo", {"a", "bb"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("bb"), std::string::npos);
  EXPECT_THROW(t.row({"only-one"}), check_error);
}

using util::BenchJson;

namespace {
std::string write_and_read(const BenchJson& json) {
  const std::string path = ::testing::TempDir() + "pdc_bench_json_test.json";
  json.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}
}  // namespace

TEST(BenchJson, DoubleFieldsRoundTripAtFullPrecision) {
  BenchJson json;
  // 0.1 is not exactly representable; max_digits10 output must
  // round-trip to the identical bit pattern.
  const double tricky = 0.1 + 0.2;
  json.obj().field("v", tricky).field("third", 1.0 / 3.0);
  const std::string text = write_and_read(json);
  const auto at = [&](const std::string& key) {
    std::size_t p = text.find("\"" + key + "\": ");
    EXPECT_NE(p, std::string::npos) << key;
    return std::stod(text.substr(p + key.size() + 4));
  };
  EXPECT_EQ(at("v"), tricky);  // exact, not NEAR
  EXPECT_EQ(at("third"), 1.0 / 3.0);
}

TEST(BenchJson, NonFiniteDoublesBecomeNull) {
  BenchJson json;
  json.obj()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("ok", 2.5);
  const std::string text = write_and_read(json);
  EXPECT_NE(text.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(text.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(text.find("\"ninf\": null"), std::string::npos);
  EXPECT_NE(text.find("\"ok\": 2.5"), std::string::npos);
  // inf/nan literals would make every consumer's parse fail.
  EXPECT_EQ(text.find("inf,"), std::string::npos);
  EXPECT_EQ(text.find("nan,"), std::string::npos);
}

TEST(BenchJson, EscapesQuotesAndRejectsFieldBeforeObj) {
  BenchJson json;
  EXPECT_THROW(json.field("orphan", 1.0), check_error);
  json.obj().field("s", "say \"hi\" \\ bye");
  const std::string text = write_and_read(json);
  EXPECT_NE(text.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\ bye"), std::string::npos);
}

}  // namespace
}  // namespace pdc
