// Tests for graph/instance (de)serialization, the new generators, and
// the CLI argument parser.

#include <gtest/gtest.h>

#include <sstream>

#include "pdc/graph/generators.hpp"
#include "pdc/graph/io.hpp"
#include "pdc/util/cli.hpp"

namespace pdc {
namespace {

TEST(Io, EdgeListRoundTrip) {
  Graph g = gen::gnp(200, 0.04, 3);
  std::stringstream s;
  io::write_edge_list(s, g);
  Graph h = io::read_edge_list(s);
  EXPECT_EQ(g.num_nodes(), h.num_nodes());
  EXPECT_EQ(g.adjacency(), h.adjacency());
}

TEST(Io, EdgeListPreservesIsolatedTrailingNodes) {
  Graph g = Graph::from_edges(5, {{0, 1}});  // nodes 2..4 isolated
  std::stringstream s;
  io::write_edge_list(s, g);
  Graph h = io::read_edge_list(s);
  EXPECT_EQ(h.num_nodes(), 5u);
}

TEST(Io, EdgeListSkipsCommentsAndBlankLines) {
  std::stringstream s("# hello\n\nn 4\n0 1\n% other comment\n2 3\n");
  Graph g = io::read_edge_list(s);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, DimacsRoundTrip) {
  Graph g = gen::planted_cliques(3, 8, 0.2, 5).graph;
  std::stringstream s;
  io::write_dimacs(s, g);
  Graph h = io::read_dimacs(s);
  EXPECT_EQ(g.num_nodes(), h.num_nodes());
  EXPECT_EQ(g.adjacency(), h.adjacency());
}

TEST(Io, DimacsParsesStandardHeader) {
  std::stringstream s("c comment\np edge 3 2\ne 1 2\ne 2 3\n");
  Graph g = io::read_dimacs(s);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Io, InstanceRoundTripWithPalettes) {
  Graph g = gen::gnp(80, 0.08, 7);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 12, 2, 9);
  std::stringstream s;
  io::write_instance(s, inst);
  D1lcInstance back = io::read_instance(s);
  EXPECT_EQ(back.graph.adjacency(), inst.graph.adjacency());
  ASSERT_EQ(back.palettes.num_nodes(), inst.palettes.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = inst.palettes.palette(v);
    auto b = back.palettes.palette(v);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Io, InstanceWithoutPaletteLinesGetsDegreePlusOne) {
  std::stringstream s("n 3\n0 1\n1 2\n");
  D1lcInstance inst = io::read_instance(s);
  EXPECT_TRUE(inst.valid());
  EXPECT_EQ(inst.palettes.size(1), 3u);  // degree 2 + 1
}

TEST(Io, RejectsInvalidInstances) {
  // Node 1 has degree 2 but a palette of size 1.
  std::stringstream s("n 3\n0 1\n1 2\nc 1 1 0\nc 0 2 0 1\nc 2 2 0 1\n");
  EXPECT_THROW(io::read_instance(s), check_error);
}

// ---- New generators. ----

TEST(Generators, BipartiteHasNoOddCycleWitnesses) {
  Graph g = gen::bipartite(60, 80, 0.05, 3);
  EXPECT_EQ(g.num_nodes(), 140u);
  // No edge inside either side.
  for (NodeId v = 0; v < 60; ++v)
    for (NodeId u : g.neighbors(v)) EXPECT_GE(u, 60u);
  for (NodeId v = 60; v < 140; ++v)
    for (NodeId u : g.neighbors(v)) EXPECT_LT(u, 60u);
}

TEST(Generators, RandomTreeIsConnectedAcyclic) {
  Graph g = gen::random_tree(500, 7);
  EXPECT_EQ(g.num_edges(), 499u);  // n-1 edges + construction connects
}

TEST(Generators, RingOfCliquesShape) {
  Graph g = gen::ring_of_cliques(4, 6);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.num_edges(), 4u * 15 + 4u);  // 4 K6 + 4 bridges
}

TEST(Generators, HypercubeIsRegular) {
  Graph g = gen::hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  for (NodeId v = 0; v < 32; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_EQ(g.num_edges(), 80u);
}

TEST(Generators, SmallWorldDegreesNearLattice) {
  Graph g = gen::small_world(300, 4, 0.1, 5);
  for (NodeId v = 0; v < 300; ++v) {
    EXPECT_GE(g.degree(v), 2u);
    EXPECT_LE(g.degree(v), 16u);
  }
}

TEST(Generators, PreferentialAttachmentSkewsDegrees) {
  Graph g = gen::preferential_attachment(1000, 3, 9);
  std::uint32_t maxd = g.max_degree();
  double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(static_cast<double>(maxd), 5.0 * avg);  // heavy tail
}

// ---- CLI parser. ----

TEST(Cli, ParsesAllForms) {
  // Note: a bare token after a bare flag is taken as that flag's value
  // (the documented "--flag value" form), so positionals precede flags.
  const char* argv[] = {"prog",   "pos1", "--alpha=3", "--beta",
                        "7",      "--flag", "--gamma=x"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("gamma", ""), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_EQ(args.get("mode", "det"), "det");
}

}  // namespace
}  // namespace pdc
