// Tests for connected components over full graphs and masked subsets.

#include <gtest/gtest.h>

#include "pdc/graph/components.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/util/rng.hpp"

namespace pdc {
namespace {

TEST(Components, WholeGraphBasics) {
  // Two triangles, disjoint.
  Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Components c = connected_components(g, nullptr);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.largest, 3u);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
}

TEST(Components, IsolatedNodesAreSingletons) {
  Graph g = Graph::from_edges(4, {{0, 1}});
  Components c = connected_components(g, nullptr);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.largest, 2u);
}

TEST(Components, MaskRestrictsTheSubgraph) {
  Graph g = gen::cycle(10);
  // Mask out node 0 and node 5: the cycle splits into two paths.
  std::vector<std::uint8_t> mask(10, 1);
  mask[0] = mask[5] = 0;
  Components c = connected_components(g, &mask);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.largest, 4u);
  EXPECT_EQ(c.component_of[0], Components::kNoComponent);
  EXPECT_EQ(c.component_of[5], Components::kNoComponent);
}

TEST(Components, EmptyMaskMeansWholeGraph) {
  Graph g = gen::grid(3, 3);
  std::vector<std::uint8_t> empty;
  Components c = connected_components(g, &empty);
  EXPECT_EQ(c.count, 1u);
  EXPECT_EQ(c.largest, 9u);
}

TEST(Components, SizesSumToMaskedNodes) {
  Graph g = gen::gnp(300, 0.008, 5);
  std::vector<std::uint8_t> mask(300);
  for (NodeId v = 0; v < 300; ++v) mask[v] = (mix64(v) % 3) != 0;
  Components c = connected_components(g, &mask);
  std::uint64_t total = 0;
  for (auto s : c.sizes) total += s;
  std::uint64_t expect = 0;
  for (auto m : mask) expect += m;
  EXPECT_EQ(total, expect);
}

TEST(Components, TreeIsOneComponent) {
  Graph g = gen::random_tree(500, 9);
  Components c = connected_components(g, nullptr);
  EXPECT_EQ(c.count, 1u);
  EXPECT_EQ(c.largest, 500u);
}

}  // namespace
}  // namespace pdc
