// Tests for the decomposable seed-search engine: oracle decomposition
// (batched == scalar totals), the cost <= mean guarantee on both search
// routes, sweep accounting (batched sweeps << legacy one-per-eval), and
// the degenerate-input contracts.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pdc/engine/seed_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::engine {
namespace {

/// Synthetic decomposed objective over a real graph: node v's
/// contribution under `seed` is 1 when its hashed slot collides with a
/// neighbor's (an abstract "trial failure"). Integer-valued, so totals
/// are exact and order-independent.
class CollisionOracle : public CostOracle {
 public:
  CollisionOracle(const Graph& g, std::uint64_t slots)
      : g_(&g), slots_(slots) {}

  std::size_t item_count() const override { return g_->num_nodes(); }

  double cost(std::uint64_t seed, std::size_t item) const override {
    const NodeId v = static_cast<NodeId>(item);
    const std::uint64_t mine = slot(seed, v);
    for (NodeId u : g_->neighbors(v)) {
      if (slot(seed, u) == mine) return 1.0;
    }
    return 0.0;
  }

 protected:
  std::uint64_t slot(std::uint64_t seed, NodeId v) const {
    return mix64(hash_combine(seed, v)) % slots_;
  }

  const Graph* g_;
  std::uint64_t slots_;
};

/// Same objective with an explicit batch hook (amortizes the neighbor
/// scan across the block, like the production oracles do).
class BatchedCollisionOracle final : public CollisionOracle {
 public:
  using CollisionOracle::CollisionOracle;

  void eval_batch(std::span<const std::uint64_t> seeds, std::size_t item,
                  double* sink) const override {
    const NodeId v = static_cast<NodeId>(item);
    std::vector<std::uint64_t> mine(seeds.size());
    for (std::size_t k = 0; k < seeds.size(); ++k)
      mine[k] = slot(seeds[k], v);
    std::vector<std::uint8_t> hit(seeds.size(), 0);
    for (NodeId u : g_->neighbors(v)) {
      for (std::size_t k = 0; k < seeds.size(); ++k) {
        if (!hit[k] && slot(seeds[k], u) == mine[k]) hit[k] = 1;
      }
    }
    for (std::size_t k = 0; k < seeds.size(); ++k)
      if (hit[k]) sink[k] += 1.0;
  }
};

double brute_force_total(const CostOracle& oracle, std::uint64_t seed) {
  double t = 0.0;
  for (std::size_t i = 0; i < oracle.item_count(); ++i)
    t += oracle.cost(seed, i);
  return t;
}

TEST(SeedSearchEngine, BatchedAndScalarTotalsAgreeOnRandomGraphs) {
  for (std::uint64_t gseed : {3ull, 17ull, 99ull}) {
    Graph g = gen::gnp(300, 0.03, gseed);
    CollisionOracle scalar(g, 32);
    BatchedCollisionOracle batched(g, 32);
    SeedSearch s1(scalar), s2(batched);
    Selection a = s1.exhaustive(64);
    Selection b = s2.exhaustive(64);
    EXPECT_EQ(a.seed, b.seed) << "graph seed " << gseed;
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_DOUBLE_EQ(a.mean_cost, b.mean_cost);
    // Spot-check against a fully independent enumeration.
    EXPECT_DOUBLE_EQ(a.cost, brute_force_total(scalar, a.seed));
  }
}

TEST(SeedSearchEngine, AllRoutesSatisfyCostLeqMean) {
  Graph g = gen::gnp(200, 0.05, 7);
  BatchedCollisionOracle oracle(g, 16);
  SeedSearch search(oracle);
  Selection ex = search.exhaustive_bits(8);
  EXPECT_LE(ex.cost, ex.mean_cost);
  Selection ce = search.conditional_expectation(8);
  EXPECT_LE(ce.cost, ce.mean_cost);
  // Both routes searched the same space, so the means coincide and the
  // exhaustive argmin lower-bounds the walk's endpoint.
  EXPECT_DOUBLE_EQ(ex.mean_cost, ce.mean_cost);
  EXPECT_LE(ex.cost, ce.cost);
}

TEST(SeedSearchEngine, StrategiesPickIdenticalSeedOnSeparableObjective) {
  // Separable per-bit penalties: the conditional-expectations walk must
  // land on the exhaustive argmin.
  class SeparableOracle final : public CostOracle {
   public:
    std::size_t item_count() const override { return 8; }
    double cost(std::uint64_t seed, std::size_t item) const override {
      bool bit = (seed >> item) & 1;
      return bit == (item % 2 == 0) ? 0.0 : 1.0;
    }
  };
  SeparableOracle oracle;
  SeedSearch search(oracle);
  Selection ex = search.exhaustive_bits(8);
  Selection ce = search.conditional_expectation(8);
  EXPECT_EQ(ex.seed, ce.seed);
  EXPECT_DOUBLE_EQ(ex.cost, 0.0);
  EXPECT_DOUBLE_EQ(ce.cost, 0.0);
}

TEST(SeedSearchEngine, SweepAccountingBeatsOnePassPerEvaluation) {
  Graph g = gen::gnp(100, 0.05, 13);
  BatchedCollisionOracle oracle(g, 16);
  SearchOptions opt;
  opt.max_batch = 64;
  SeedSearch search(oracle, opt);
  Selection ex = search.exhaustive(256);
  EXPECT_EQ(ex.stats.evaluations, 256u);
  EXPECT_EQ(ex.stats.sweeps, 4u);  // ceil(256 / 64)
  Selection ce = search.conditional_expectation(8);
  EXPECT_EQ(ce.stats.evaluations, 256u);  // prefix sharing: no re-evals
  EXPECT_EQ(ce.stats.sweeps, 4u);
}

TEST(SeedSearchEngine, ConditionalExpectationEarlyExitsOnFlatBranch) {
  // Identically-zero objective: the walk should stop after the first
  // bit and return seed 0 with exact mean 0.
  class ZeroOracle final : public CostOracle {
   public:
    std::size_t item_count() const override { return 10; }
    double cost(std::uint64_t, std::size_t) const override { return 0.0; }
  };
  ZeroOracle oracle;
  SeedSearch search(oracle);
  Selection ce = search.conditional_expectation(10);
  EXPECT_EQ(ce.seed, 0u);
  EXPECT_DOUBLE_EQ(ce.cost, 0.0);
  EXPECT_DOUBLE_EQ(ce.mean_cost, 0.0);
}

TEST(SeedSearchEngine, ScalarOracleMatchesLegacyContract) {
  // Opaque objective with a known minimum; the engine parallelizes
  // over seeds and must still return exact accounting.
  ScalarOracle oracle([](std::uint64_t seed) {
    if (seed == 37) return 0.0;
    return 1.0 + static_cast<double>(mix64(seed) % 1000) / 1000.0;
  });
  SeedSearch search(oracle);
  Selection ex = search.exhaustive_bits(8);
  EXPECT_EQ(ex.seed, 37u);
  EXPECT_DOUBLE_EQ(ex.cost, 0.0);
  EXPECT_EQ(ex.stats.evaluations, 256u);
  EXPECT_GE(ex.mean_cost, ex.cost);
}

TEST(SeedSearchEngine, EvaluateSeedSumsAllItems) {
  Graph g = gen::gnp(150, 0.04, 21);
  BatchedCollisionOracle oracle(g, 8);
  SearchStats stats;
  double total = evaluate_seed(oracle, 5, &stats);
  EXPECT_DOUBLE_EQ(total, brute_force_total(oracle, 5));
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.sweeps, 1u);
}

TEST(SeedSearchEngine, AdaptiveBatchTracksItemCountWithinCacheBudget) {
  SearchOptions adaptive;  // max_batch == 0: derive from the oracle
  // Floor of 128 for small item sets (little setup to amortize).
  EXPECT_EQ(resolve_max_batch(adaptive, 1), 128u);
  EXPECT_EQ(resolve_max_batch(adaptive, 500), 128u);
  // An eighth of the item count (rounded to a power of two) past it...
  EXPECT_EQ(resolve_max_batch(adaptive, 8192), 1024u);
  EXPECT_EQ(resolve_max_batch(adaptive, 16384), 2048u);
  // ...capped at a 4096-double (32 KiB) sink.
  EXPECT_EQ(resolve_max_batch(adaptive, 1 << 20), 4096u);
  // Explicit values pass through untouched.
  SearchOptions manual;
  manual.max_batch = 77;
  EXPECT_EQ(resolve_max_batch(manual, 1 << 20), 77u);
}

TEST(SeedSearchEngine, StatsRecordTheChosenBatch) {
  Graph g = gen::gnp(120, 0.05, 29);
  BatchedCollisionOracle oracle(g, 16);
  // Adaptive: 120 items resolve to the 128 floor; 200 seeds split into
  // blocks of 128 + 72, and stats report the widest block used.
  SeedSearch auto_search(oracle);
  Selection a = auto_search.exhaustive(200);
  EXPECT_EQ(a.stats.batch, 128u);
  EXPECT_EQ(a.stats.sweeps, 2u);
  // Explicit max_batch is honored verbatim.
  SearchOptions opt;
  opt.max_batch = 64;
  SeedSearch manual(oracle, opt);
  Selection b = manual.exhaustive(200);
  EXPECT_EQ(b.stats.batch, 64u);
  EXPECT_EQ(b.stats.sweeps, 4u);  // ceil(200 / 64)
}

TEST(SeedSearchEngine, SingleSeedSpacesAreWellDefined) {
  // family_size == 1 and seed_bits == 1: exact means, no over-counted
  // evaluations (the legacy shims' regression cases).
  class ConstOracle final : public CostOracle {
   public:
    std::size_t item_count() const override { return 4; }
    double cost(std::uint64_t seed, std::size_t) const override {
      return seed == 0 ? 2.0 : 1.0;
    }
  };
  ConstOracle oracle;
  SeedSearch search(oracle);
  Selection one = search.exhaustive(1);
  EXPECT_EQ(one.seed, 0u);
  EXPECT_DOUBLE_EQ(one.cost, 8.0);
  EXPECT_DOUBLE_EQ(one.mean_cost, 8.0);
  EXPECT_EQ(one.stats.evaluations, 1u);

  Selection bit = search.conditional_expectation(1);
  EXPECT_EQ(bit.seed, 1u);  // branch 1 mean 4 < branch 0 mean 8
  EXPECT_DOUBLE_EQ(bit.cost, 4.0);
  EXPECT_DOUBLE_EQ(bit.mean_cost, 6.0);
  EXPECT_EQ(bit.stats.evaluations, 2u);
}

}  // namespace
}  // namespace pdc::engine
