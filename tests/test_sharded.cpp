// Tests for the sharded seed-search subsystem: shard-plan invariants,
// converge-cast correctness and round/space accounting at small s
// (multi-round fan-in), and the headline differential guarantee — the
// ShardedSeedSearch must return bit-identical Selections to the
// shared-memory SeedSearch on every search route and on the production
// oracles (Lemma-10 SSP failures, low-degree hash trials, Luby rounds),
// with the Cluster's strict capacity checks enabled throughout and the
// Ledger advancing by exactly the analytic converge-cast round count.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "pdc/baseline/luby.hpp"
#include "pdc/baseline/luby_mpc.hpp"
#include "pdc/d1lc/low_degree_mpc.hpp"
#include "pdc/derand/lemma10.hpp"
#include "pdc/engine/seed_search.hpp"
#include "pdc/engine/sharded/converge_cast.hpp"
#include "pdc/engine/sharded/shard_plan.hpp"
#include "pdc/engine/sharded/sharded_search.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/hknt/procedures.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::engine::sharded {
namespace {

mpc::Config cluster_config(std::uint32_t machines, std::uint64_t s,
                           std::uint64_t n = 1000) {
  mpc::Config c;
  c.n = n;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  return c;
}

/// Integer-valued decomposed objective over a graph (same shape as the
/// production oracles): node v contributes 1 under `seed` when its
/// hashed slot collides with a neighbor's.
class CollisionOracle final : public CostOracle {
 public:
  CollisionOracle(const Graph& g, std::uint64_t slots)
      : g_(&g), slots_(slots) {}
  std::size_t item_count() const override { return g_->num_nodes(); }
  double cost(std::uint64_t seed, std::size_t item) const override {
    const NodeId v = static_cast<NodeId>(item);
    const std::uint64_t mine = slot(seed, v);
    for (NodeId u : g_->neighbors(v)) {
      if (slot(seed, u) == mine) return 1.0;
    }
    return 0.0;
  }

 private:
  std::uint64_t slot(std::uint64_t seed, NodeId v) const {
    return mix64(hash_combine(seed, v)) % slots_;
  }
  const Graph* g_;
  std::uint64_t slots_;
};

void expect_same_selection(const Selection& a, const Selection& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);            // bit-identical, not just near
  EXPECT_EQ(a.mean_cost, b.mean_cost);  // (doubles compared with ==)
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}

// ---- ShardPlan. ----

TEST(ShardPlan, OwnerModuloMatchesHomeConventionAndBalances) {
  ShardPlan plan = ShardPlan::owner_modulo(10, 3);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(plan.home_of(i), i % 3) << "item " << i;
  EXPECT_EQ(plan.max_load(), 4u);  // ceil(10 / 3)
  // CSR shards partition the items.
  std::vector<bool> seen(10, false);
  for (mpc::MachineId m = 0; m < 3; ++m)
    for (std::uint32_t i : plan.items_of(m)) {
      EXPECT_EQ(plan.home_of(i), m);
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ShardPlan, FromHomesSpillsOverloadedMachines) {
  // Every item claims machine 0; capacity 2 forces all but two to spill
  // to the least-loaded machines.
  std::vector<mpc::MachineId> homes(7, 0);
  ShardPlan plan = ShardPlan::from_homes(homes, 4, 2);
  EXPECT_LE(plan.max_load(), 2u);
  std::uint64_t total = 0;
  for (mpc::MachineId m = 0; m < 4; ++m) total += plan.items_of(m).size();
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(plan.items_of(0).size(), 2u);  // owner honored up to capacity
}

TEST(ShardPlan, FromHomesRejectsImpossibleCapacity) {
  std::vector<mpc::MachineId> homes(9, 1);
  EXPECT_THROW(ShardPlan::from_homes(homes, 2, 4), check_error);
}

TEST(ShardPlan, MakeChecksLocalSpace) {
  EXPECT_THROW(ShardPlan::make(1000, cluster_config(2, 64)), check_error);
  ShardPlan ok = ShardPlan::make(100, cluster_config(2, 64));
  EXPECT_EQ(ok.max_load(), 50u);
}

// ---- Converge-cast. ----

TEST(ConvergeCast, SumsPartialsExactly) {
  for (std::uint32_t p : {1u, 2u, 5u, 16u}) {
    mpc::Cluster cluster(cluster_config(p, 4096));
    const std::size_t width = 7;
    ConvergeCastStats cc;
    auto totals = converge_cast_sum(
        cluster, width, pick_fan_in(cluster.config(), width),
        [&](mpc::MachineId m, std::int64_t* sink) {
          for (std::size_t k = 0; k < width; ++k)
            sink[k] += static_cast<std::int64_t>(m * width + k) - 3;
        },
        &cc);
    for (std::size_t k = 0; k < width; ++k) {
      std::int64_t expect = 0;
      for (std::uint32_t m = 0; m < p; ++m)
        expect += static_cast<std::int64_t>(m * width + k) - 3;
      EXPECT_EQ(totals[k], expect) << "p=" << p << " k=" << k;
    }
    EXPECT_EQ(cc.payload_words, static_cast<std::uint64_t>(p - 1) * width);
    EXPECT_EQ(cluster.ledger().rounds(), cc.rounds);
    EXPECT_TRUE(cluster.ledger().violations().empty());
  }
}

TEST(ConvergeCast, SmallSpaceForcesMultiRoundFanIn) {
  // s = 64 with width 32 admits fan-in 2 only: a fold-round parent's
  // joint footprint (own partial + one child's) is exactly s. 9
  // machines -> ceil(log2 9) = 4 levels, with strict capacity checks on
  // throughout.
  const std::size_t width = 32;
  mpc::Config cfg = cluster_config(9, 64);
  const std::uint32_t f = pick_fan_in(cfg, width);
  EXPECT_EQ(f, 2u);
  EXPECT_EQ(converge_cast_rounds(9, f), 4u);

  mpc::Cluster cluster(cfg, /*strict=*/true);
  ConvergeCastStats cc;
  auto totals = converge_cast_sum(
      cluster, width, f,
      [&](mpc::MachineId m, std::int64_t* sink) {
        for (std::size_t k = 0; k < width; ++k) sink[k] += m + 1;
      },
      &cc);
  for (std::size_t k = 0; k < width; ++k) EXPECT_EQ(totals[k], 45);  // 1+..+9
  EXPECT_EQ(cc.rounds, 4u);
  EXPECT_EQ(cluster.ledger().rounds(), 4u);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(ConvergeCast, AnalyticRoundFormula) {
  EXPECT_EQ(converge_cast_rounds(1, 2), 1u);   // compute round only
  EXPECT_EQ(converge_cast_rounds(2, 2), 1u);
  EXPECT_EQ(converge_cast_rounds(8, 2), 3u);
  EXPECT_EQ(converge_cast_rounds(9, 2), 4u);
  EXPECT_EQ(converge_cast_rounds(9, 3), 2u);
  EXPECT_EQ(converge_cast_rounds(100, 10), 2u);
  EXPECT_EQ(converge_cast_rounds(100, 101), 1u);
}

TEST(ConvergeCast, FanInRespectsLocalSpace) {
  // f * width (own partial + f - 1 children) must fit in s.
  EXPECT_EQ(pick_fan_in(cluster_config(64, 100), 50), 2u);
  EXPECT_EQ(pick_fan_in(cluster_config(64, 160), 50), 3u);
  EXPECT_EQ(pick_fan_in(cluster_config(64, 1 << 20), 8), 64u);  // capped at p
  // Even fan-in 2 needs width <= s / 2.
  EXPECT_THROW(pick_fan_in(cluster_config(4, 10), 6), check_error);
  // An explicit fan-in that can't fit its fold footprint is rejected
  // up front by the cast itself, not by a mid-round capacity throw.
  mpc::Cluster tight(cluster_config(8, 64));
  EXPECT_THROW(converge_cast_sum(tight, 32, 16,
                                 [](mpc::MachineId, std::int64_t*) {}),
               check_error);
}

// ---- Differential: synthetic oracle, all three routes. ----

class ShardedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ShardedDifferential, AllRoutesBitIdenticalToSharedMemory) {
  const std::uint32_t p = static_cast<std::uint32_t>(GetParam());
  Graph g = gen::gnp(240, 0.04, 11);
  CollisionOracle shared_oracle(g, 16), sharded_oracle(g, 16);

  SeedSearch shared(shared_oracle);
  mpc::Cluster cluster(cluster_config(p, 4096, g.num_nodes()),
                       /*strict=*/true);
  ShardedSeedSearch sharded(sharded_oracle, cluster);

  expect_same_selection(shared.exhaustive(96), sharded.exhaustive(96));
  expect_same_selection(shared.exhaustive_bits(7),
                        sharded.exhaustive_bits(7));
  expect_same_selection(shared.conditional_expectation(7),
                        sharded.conditional_expectation(7));
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

INSTANTIATE_TEST_SUITE_P(MachineCounts, ShardedDifferential,
                         ::testing::Values(1, 3, 8, 17));

TEST(ShardedSeedSearch, LedgerAndWordAccountingMatchAnalyticFormulas) {
  Graph g = gen::gnp(150, 0.05, 3);
  CollisionOracle oracle(g, 8);
  const std::uint32_t p = 6;
  mpc::Cluster cluster(cluster_config(p, 4096, g.num_nodes()));

  ShardedOptions opt;
  opt.search.max_batch = 16;  // 64 seeds -> 4 sweeps of width 16
  opt.fan_in = 2;
  ShardedSeedSearch search(oracle, cluster, opt);
  Selection sel = search.exhaustive(64);

  EXPECT_EQ(sel.stats.sweeps, 4u);
  EXPECT_EQ(sel.stats.batch, 16u);
  const std::uint64_t per_sweep = converge_cast_rounds(p, 2);  // = 3
  EXPECT_EQ(sel.stats.sharded.rounds, 4 * per_sweep);
  EXPECT_EQ(cluster.ledger().rounds(), sel.stats.sharded.rounds);
  EXPECT_EQ(cluster.ledger().rounds_by_phase().at("seed-search(sharded)"),
            sel.stats.sharded.rounds);
  EXPECT_EQ(cluster.ledger().phase(), "init");  // caller phase restored
  // Every non-root machine ships each sweep's 16-word partial once.
  EXPECT_EQ(sel.stats.sharded.words,
            static_cast<std::uint64_t>(p - 1) * sel.stats.evaluations);
  EXPECT_EQ(sel.stats.sharded.max_machine_load, 25u);  // ceil(150 / 6)
}

TEST(ShardedSeedSearch, OpaqueOraclesShardTheSeedBlock) {
  // item_count == 1: the capacity-aware fallback distributes the seed
  // block over machines instead of the (indivisible) item set.
  ScalarOracle shared_oracle(
      [](std::uint64_t seed) { return double((seed * 7 + 3) % 23); });
  ScalarOracle sharded_oracle(
      [](std::uint64_t seed) { return double((seed * 7 + 3) % 23); });
  SeedSearch shared(shared_oracle);
  mpc::Cluster cluster(cluster_config(5, 2048));
  ShardedSeedSearch sharded(sharded_oracle, cluster);
  expect_same_selection(shared.exhaustive(200), sharded.exhaustive(200));
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(ShardedSeedSearch, RejectsCostsOffTheFixedPointGrid) {
  // 0.3 has no finite binary expansion: encoding it would silently
  // break the bit-identity guarantee, so the adapter must refuse.
  class OffGridOracle final : public CostOracle {
   public:
    std::size_t item_count() const override { return 4; }
    double cost(std::uint64_t, std::size_t) const override { return 0.3; }
  };
  OffGridOracle oracle;
  mpc::Cluster cluster(cluster_config(2, 1024));
  ShardedSeedSearch search(oracle, cluster);
  EXPECT_THROW(search.exhaustive(8), check_error);
  // Dyadic fractions on the grid are fine.
  class DyadicOracle final : public CostOracle {
   public:
    std::size_t item_count() const override { return 4; }
    double cost(std::uint64_t seed, std::size_t) const override {
      return 0.25 * static_cast<double>(seed % 5);
    }
  };
  DyadicOracle shared_oracle, sharded_oracle;
  SeedSearch shared(shared_oracle);
  mpc::Cluster cluster2(cluster_config(3, 1024));
  ShardedSeedSearch sharded(sharded_oracle, cluster2);
  expect_same_selection(shared.exhaustive(40), sharded.exhaustive(40));
}

TEST(ShardedSeedSearch, BlockWidthClampsToLocalSpace) {
  // s = 32 caps the sweep width at s / 2 = 16, well below the resolved
  // batch: a fold-round parent must hold two partials at once.
  Graph g = gen::gnp(60, 0.1, 9);
  CollisionOracle oracle(g, 8);
  mpc::Cluster cluster(cluster_config(4, 32, g.num_nodes()));
  ShardedSeedSearch sharded(oracle, cluster);
  Selection sel = sharded.exhaustive(64);
  EXPECT_LE(sel.stats.batch, 16u);
  EXPECT_GE(sel.stats.sweeps, 4u);
  EXPECT_TRUE(cluster.ledger().violations().empty());

  CollisionOracle ref(g, 8);
  Selection shared = SeedSearch(ref).exhaustive(64);
  expect_same_selection(shared, sel);
}

// ---- Differential: the production oracles. ----

TEST(ShardedProduction, Lemma10SeedSelectionMatchesOnBothStrategies) {
  Graph g = gen::gnp(220, 0.03, 19);
  D1lcInstance inst =
      make_random_lists(g, static_cast<Color>(g.max_degree()) + 20, 10, 3);
  hknt::HkntConfig cfg;
  hknt::TryRandomColorProc proc(
      cfg, hknt::TryRandomColorProc::Ssp::kSlackTwiceDegree, "sharded");
  derand::ColoringState state(inst.graph, inst.palettes);

  for (auto strategy : {derand::SeedStrategy::kExhaustive,
                        derand::SeedStrategy::kConditionalExpectation}) {
    derand::Lemma10Options opt;
    opt.strategy = strategy;
    opt.seed_bits = 5;
    derand::ChunkAssignment chunks =
        derand::assign_chunks(g, proc.tau(), opt, nullptr);

    Selection shared = derand::lemma10_seed_selection(proc, state, chunks, opt);

    mpc::Cluster cluster(cluster_config(7, 4096, g.num_nodes()));
    opt.search.backend = SearchBackend::kSharded;
    opt.search.cluster = &cluster;
    Selection dist = derand::lemma10_seed_selection(proc, state, chunks, opt);

    expect_same_selection(shared, dist);
    EXPECT_GT(dist.stats.sharded.rounds, 0u);
    EXPECT_EQ(cluster.ledger().rounds(), dist.stats.sharded.rounds);
    EXPECT_TRUE(cluster.ledger().violations().empty());
  }
}

TEST(ShardedProduction, LowDegreeTrialSelectionMatches) {
  Graph g = gen::gnp(180, 0.04, 7);
  D1lcInstance inst = make_degree_plus_one(g);
  EnumerablePairwiseFamily family(21, 6);
  Coloring none(g.num_nodes(), kNoColor);

  Selection shared = d1lc::low_degree_trial_selection(inst, none, family);
  mpc::Cluster cluster(cluster_config(5, 4096, g.num_nodes()));
  ExecutionPolicy pol;
  pol.backend = SearchBackend::kSharded;
  pol.cluster = &cluster;
  Selection dist = d1lc::low_degree_trial_selection(inst, none, family, pol);
  expect_same_selection(shared, dist);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(ShardedProduction, LubySeedSelectionMatchesOnBothStrategies) {
  Graph g = gen::gnp(200, 0.035, 23);
  std::vector<std::uint8_t> status(g.num_nodes(), baseline::kLubyUndecided);
  std::vector<std::uint32_t> chunk_of(g.num_nodes());
  std::iota(chunk_of.begin(), chunk_of.end(), 0u);

  for (auto strategy : {derand::SeedStrategy::kExhaustive,
                        derand::SeedStrategy::kConditionalExpectation}) {
    derand::Lemma10Options opt;
    opt.strategy = strategy;
    opt.seed_bits = 4;
    Selection shared = baseline::select_luby_seed_selection(
        g, status, opt, chunk_of, /*round=*/2);

    mpc::Cluster cluster(cluster_config(6, 4096, g.num_nodes()));
    opt.search.backend = SearchBackend::kSharded;
    Selection dist = baseline::select_luby_seed_selection(
        g, status, opt, chunk_of, /*round=*/2, &cluster);
    expect_same_selection(shared, dist);
    EXPECT_TRUE(cluster.ledger().violations().empty());
  }
}

// ---- End-to-end: migrated call sites on the sharded backend. ----

TEST(ShardedEndToEnd, DerandomizedLubyOnClusterMatchesSharedMemory) {
  Graph g = gen::gnp(150, 0.04, 31);
  derand::Lemma10Options opt;
  opt.seed_bits = 4;
  opt.salt = 31;
  opt.strategy = derand::SeedStrategy::kConditionalExpectation;

  baseline::MisResult shared = baseline::luby_mis_derandomized(g, opt, 6);

  mpc::Config cfg = cluster_config(4, 16384, g.num_nodes());
  mpc::Cluster cluster(cfg);
  opt.search.backend = SearchBackend::kSharded;
  baseline::MpcMisResult dist =
      baseline::luby_mis_mpc_derandomized(cluster, g, opt, 6);

  EXPECT_EQ(dist.in_mis, shared.in_mis);
  EXPECT_EQ(dist.luby_rounds, shared.rounds);
  EXPECT_EQ(dist.greedy_added, shared.greedy_added);
  EXPECT_EQ(dist.search.evaluations, shared.search.evaluations);
  // The cluster executed 3 rounds per Luby round plus the searches'
  // converge-casts — the aggregation story, on the substrate.
  EXPECT_GT(dist.search.sharded.rounds, 0u);
  EXPECT_EQ(dist.mpc_rounds,
            3 * dist.luby_rounds + dist.search.sharded.rounds);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(ShardedEndToEnd, OptionsCarriedClusterAloneSufficesForLuby) {
  // Lemma10Options::search carrying a backend + cluster alone selects
  // the sharded backend; the shared-memory Luby loop passes no explicit
  // cluster, so the policy's cluster must kick in (and the result must
  // still match a fully shared-memory run).
  Graph g = gen::gnp(120, 0.05, 41);
  derand::Lemma10Options opt;
  opt.seed_bits = 4;
  opt.strategy = derand::SeedStrategy::kExhaustive;
  baseline::MisResult shared = baseline::luby_mis_derandomized(g, opt, 4);

  mpc::Cluster cluster(cluster_config(3, 8192, g.num_nodes()));
  opt.search.backend = SearchBackend::kSharded;
  opt.search.cluster = &cluster;
  baseline::MisResult via_options = baseline::luby_mis_derandomized(g, opt, 4);

  EXPECT_EQ(via_options.in_mis, shared.in_mis);
  EXPECT_GT(via_options.search.sharded.rounds, 0u);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

TEST(ShardedEndToEnd, LowDegreePhaseLoopMatchesAndAccountsRounds) {
  Graph g = gen::gnp(160, 0.03, 13);
  D1lcInstance inst = make_degree_plus_one(g);

  mpc::Cluster shared_cluster(cluster_config(5, 16384, g.num_nodes()));
  d1lc::MpcLowDegreeResult shared =
      d1lc::low_degree_color_mpc(shared_cluster, inst);

  mpc::Cluster cluster(cluster_config(5, 16384, g.num_nodes()));
  ExecutionPolicy pol;
  pol.backend = SearchBackend::kSharded;
  d1lc::MpcLowDegreeResult dist =
      d1lc::low_degree_color_mpc(cluster, inst, 6, 0xC0FFEE, pol);

  EXPECT_TRUE(dist.valid);
  EXPECT_EQ(dist.coloring, shared.coloring);
  EXPECT_EQ(dist.phases, shared.phases);
  EXPECT_GT(dist.search.sharded.rounds, 0u);
  EXPECT_EQ(dist.mpc_rounds, 2 * dist.phases + dist.search.sharded.rounds);
  EXPECT_TRUE(cluster.ledger().violations().empty());
}

}  // namespace
}  // namespace pdc::engine::sharded
