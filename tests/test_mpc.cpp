// Tests for the MPC substrate: cluster round semantics, space
// enforcement, collectives, deterministic sample sort, distributed graph
// layout and the Lemma-17 gather, ledger accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pdc/graph/generators.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/mpc/cost_model.hpp"
#include "pdc/mpc/dgraph.hpp"
#include "pdc/mpc/primitives.hpp"
#include "pdc/util/rng.hpp"

namespace pdc::mpc {
namespace {

Config small_config(std::uint32_t machines, std::uint64_t s) {
  Config c;
  c.n = 1000;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  return c;
}

TEST(Config, SublinearShapesMatchModel) {
  Config c = Config::sublinear(10'000, 0.5, 50'000, 4.0);
  EXPECT_EQ(c.n, 10'000u);
  // s ~ 4 * sqrt(10000) = 400.
  EXPECT_NEAR(static_cast<double>(c.local_space_words), 400.0, 1.0);
  EXPECT_GE(c.global_space_words(), 50'000u);
}

TEST(Cluster, RoundDeliversMessagesWithHeaders) {
  Cluster c(small_config(4, 1000));
  c.round([](MachineId m, const std::vector<Word>&, std::vector<Word>&,
             Outbox& out) {
    if (m == 1) out.send(3, {10, 20});
  });
  const auto& inbox = c.inbox(3);
  ASSERT_EQ(inbox.size(), 4u);  // {sender, len, 10, 20}
  EXPECT_EQ(inbox[0], 1u);
  EXPECT_EQ(inbox[1], 2u);
  EXPECT_EQ(inbox[2], 10u);
  EXPECT_EQ(inbox[3], 20u);
  EXPECT_EQ(c.ledger().rounds(), 1u);
}

TEST(Cluster, StrictModeThrowsOnOverflow) {
  Cluster c(small_config(2, 4));
  EXPECT_THROW(
      c.round([](MachineId m, const std::vector<Word>&, std::vector<Word>&,
                 Outbox& out) {
        if (m == 0) out.send(1, std::vector<Word>(100, 7));
      }),
      check_error);
}

TEST(Cluster, LenientModeRecordsViolation) {
  Cluster c(small_config(2, 4), /*strict=*/false);
  c.round([](MachineId m, const std::vector<Word>&, std::vector<Word>&,
             Outbox& out) {
    if (m == 0) out.send(1, std::vector<Word>(100, 7));
  });
  EXPECT_FALSE(c.ledger().violations().empty());
}

TEST(Broadcast, AllMachinesReceivePayload) {
  Cluster c(small_config(9, 1000));
  std::vector<Word> payload{1, 2, 3};
  std::vector<std::vector<Word>> received;
  int rounds = broadcast(c, 4, payload, received);
  EXPECT_LE(rounds, 2);
  for (MachineId m = 0; m < 9; ++m) {
    EXPECT_EQ(received[m], payload) << "machine " << m;
  }
}

TEST(ReduceSum, TotalsAcrossMachines) {
  Cluster c(small_config(7, 1000));
  std::vector<Word> vals{1, 2, 3, 4, 5, 6, 7};
  Word total = reduce_sum(c, 2, vals);
  EXPECT_EQ(total, 28u);
}

TEST(ExclusivePrefix, MatchesSerialScan) {
  Cluster c(small_config(6, 1000));
  std::vector<Word> vals{5, 1, 0, 7, 2, 9};
  auto prefix = exclusive_prefix(c, vals);
  std::vector<Word> expect{0, 5, 6, 6, 13, 15};
  EXPECT_EQ(prefix, expect);
}

class SampleSortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SampleSortTest, SortsArbitraryRecordsGlobally) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  std::vector<Record> recs(n);
  for (auto& r : recs) r = {rng.below(1'000'000), rng()};

  Config cfg = small_config(8, std::max<std::uint64_t>(512, n));
  Cluster c(cfg);
  scatter_records(c, recs);
  sample_sort(c);

  auto sorted = collect_records(c);
  ASSERT_EQ(sorted.size(), recs.size());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // Same multiset.
  auto expect = recs;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
  // Constant rounds (4 communication rounds for one sort at this scale).
  EXPECT_LE(c.ledger().rounds(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleSortTest,
                         ::testing::Values(0, 1, 10, 100, 1000, 5000));

TEST(SampleSort, AlreadySortedAndReversedInputs) {
  for (bool reversed : {false, true}) {
    std::vector<Record> recs(500);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      std::uint64_t k = reversed ? recs.size() - i : i;
      recs[i] = {k, i};
    }
    Cluster c(small_config(5, 2048));
    scatter_records(c, recs);
    sample_sort(c);
    auto sorted = collect_records(c);
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
    EXPECT_EQ(sorted.size(), recs.size());
  }
}

TEST(DistributedGraph, DegreesMatchHostGraph) {
  Graph g = gen::gnp(120, 0.06, 3);
  Config cfg = small_config(6, 4096);
  Cluster c(cfg);
  DistributedGraph dg(c, g);
  auto degrees = dg.compute_degrees();
  ASSERT_EQ(degrees.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(degrees[v], g.degree(v)) << "node " << v;
}

TEST(DistributedGraph, Lemma17GatherDeliversNeighborLists) {
  Graph g = gen::gnp(60, 0.1, 5);
  Config cfg = small_config(4, 1u << 16);
  Cluster c(cfg);
  DistributedGraph dg(c, g);
  auto received = dg.gather_neighbor_lists();
  // Node v must have received, for every neighbor u, u's full adjacency.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<std::pair<NodeId, NodeId>> got(received[v].begin(),
                                            received[v].end());
    for (NodeId u : g.neighbors(v)) {
      for (NodeId w : g.neighbors(u)) {
        EXPECT_TRUE(got.count({u, w}))
            << "node " << v << " missing (" << u << "," << w << ")";
      }
    }
  }
}

TEST(Ledger, PhasesAndParallelAbsorption) {
  Ledger l;
  l.begin_phase("a");
  l.add_rounds(3);
  l.begin_phase("b");
  l.add_rounds(2);
  EXPECT_EQ(l.rounds(), 5u);
  EXPECT_EQ(l.rounds_by_phase().at("a"), 3u);

  std::vector<Ledger> children(3);
  children[0].add_rounds(7);
  children[1].add_rounds(2);
  children[2].add_rounds(5);
  l.absorb_parallel(children);
  EXPECT_EQ(l.rounds(), 12u);  // 5 + max(7,2,5)
}

TEST(CostModel, ChargesAndFlagsViolations) {
  Config cfg = small_config(4, 100);  // s = 100 => sqrt(s) = 10
  Ledger l;
  CostModel cm(cfg, l);
  cm.charge_neighborhood_gather(5);  // 25 <= 100: fine
  EXPECT_TRUE(l.violations().empty());
  cm.charge_neighborhood_gather(20);  // 400 > 100: flagged
  EXPECT_FALSE(l.violations().empty());
  EXPECT_GT(l.rounds(), 0u);
}

TEST(CostModel, LogStarSmall) {
  EXPECT_EQ(CostModel::log_star(2), 1u);
  EXPECT_EQ(CostModel::log_star(16), 3u);
  EXPECT_LE(CostModel::log_star(1'000'000'000), 5u);
}

}  // namespace
}  // namespace pdc::mpc
