// Differential suite for the pluggable MPC execution substrates
// (pdc/mpc/substrate.hpp): the thread-pool substrate must be
// observationally identical to the sequential reference — bit-identical
// inboxes and storages after every round, identical Selections /
// SearchStats / Ledger round counts for all four engine search routes,
// capacity violations surfacing on the host thread — plus the
// steady-state no-allocation guarantee of the arena outboxes, the
// SenseBarrier protocol itself, and the substrate.round observability
// (spans + mpc.substrate.* metrics).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "pdc/engine/search.hpp"
#include "pdc/engine/sharded/converge_cast.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/mpc/cluster.hpp"
#include "pdc/mpc/substrate.hpp"
#include "pdc/obs/obs.hpp"
#include "pdc/util/rng.hpp"
#include "pdc/util/sense_barrier.hpp"

// Global allocation counter for the steady-state no-allocation test
// (same pattern as tests/test_obs.cpp). Counts every thread's
// allocations — exactly what the test wants: a worker that allocates
// per round is as much a regression as the host doing it.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace pdc::mpc {
namespace {

Config cluster_config(std::uint32_t machines, std::uint64_t s,
                      SubstrateKind kind = SubstrateKind::kSequential,
                      std::uint32_t threads = 0) {
  Config c;
  c.n = 1000;
  c.phi = 0.5;
  c.local_space_words = s;
  c.num_machines = machines;
  c.substrate = kind;
  c.substrate_threads = threads;
  return c;
}

/// A messaging round with non-uniform fan-out: machine m sends k
/// payload words to each of its first min(m % 4, p - 1) successors and
/// appends a digest of its inbox to storage — enough structure that a
/// framing or ordering bug anywhere shows up as a bit difference.
StepFn chatter_step(std::uint32_t p, std::uint64_t round) {
  return [p, round](MachineId m, const std::vector<Word>& inbox,
                    std::vector<Word>& storage, Outbox& out) {
    Word digest = hash_combine(round, m);
    for_each_message(inbox, [&](MachineId from, std::span<const Word> pl) {
      digest = hash_combine(digest, from);
      for (Word w : pl) digest = hash_combine(digest, w);
    });
    storage.push_back(digest);
    const std::uint32_t fan = m % 4;
    for (std::uint32_t k = 1; k <= fan && k < p; ++k) {
      const MachineId to = (m + k) % p;
      out.send(to, {m, round, mix64(hash_combine(m, k)), digest});
    }
  };
}

// ---- SenseBarrier. ----

TEST(SenseBarrier, ReleasesEveryPartyEveryEpisode) {
  constexpr unsigned kThreads = 4;
  constexpr int kEpisodes = 200;
  SenseBarrier barrier(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      bool sense = false;
      for (int e = 0; e < kEpisodes; ++e) {
        arrived.fetch_add(1);
        barrier.arrive_and_wait(sense);
        // Everyone from this episode has arrived before anyone leaves.
        if (arrived.load() < kThreads * (e + 1)) failed = true;
        barrier.arrive_and_wait(sense);  // separate episodes
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(arrived.load(), static_cast<int>(kThreads) * kEpisodes);
}

TEST(SenseBarrier, AccumulatesWaitTime) {
  SenseBarrier barrier(2);
  std::uint64_t waited = 0;
  std::thread late([&] {
    bool sense = false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    barrier.arrive_and_wait(sense);
  });
  bool sense = false;
  barrier.arrive_and_wait(sense, &waited);
  late.join();
  EXPECT_GE(waited, 1000u);  // blocked for most of the 5ms
}

// ---- Raw-round bit identity. ----

TEST(SubstrateDifferential, InboxesStoragesAndLedgersMatchSequential) {
  constexpr std::uint64_t kRounds = 4;
  for (std::uint32_t p = 1; p <= 17; ++p) {
    Cluster ref(cluster_config(p, 4096));
    for (std::uint64_t r = 0; r < kRounds; ++r) ref.round(chatter_step(p, r));
    for (std::uint32_t threads : {1u, 2u, 8u}) {
      Cluster tp(cluster_config(p, 4096, SubstrateKind::kThreadPool, threads));
      for (std::uint64_t r = 0; r < kRounds; ++r) tp.round(chatter_step(p, r));
      for (MachineId m = 0; m < p; ++m) {
        EXPECT_EQ(ref.inbox(m), tp.inbox(m))
            << "inbox of machine " << m << " at p=" << p
            << " threads=" << threads;
        EXPECT_EQ(ref.storage(m), tp.storage(m))
            << "storage of machine " << m << " at p=" << p
            << " threads=" << threads;
      }
      EXPECT_EQ(ref.ledger().rounds(), tp.ledger().rounds());
      EXPECT_EQ(ref.ledger().peak_local_space(),
                tp.ledger().peak_local_space());
      EXPECT_EQ(ref.ledger().peak_global_space(),
                tp.ledger().peak_global_space());
      EXPECT_EQ(tp.substrate_stats().rounds, kRounds);
    }
  }
}

// ---- Engine-route bit identity. ----

/// Integer-valued decomposed objective (same shape as the production
/// oracles and tests/test_sharded.cpp): node v contributes 1 under
/// `seed` when its hashed slot collides with a neighbor's.
class CollisionOracle final : public engine::CostOracle {
 public:
  CollisionOracle(const Graph& g, std::uint64_t slots)
      : g_(&g), slots_(slots) {}
  std::size_t item_count() const override { return g_->num_nodes(); }
  double cost(std::uint64_t seed, std::size_t item) const override {
    const NodeId v = static_cast<NodeId>(item);
    const std::uint64_t mine = slot(seed, v);
    for (NodeId u : g_->neighbors(v)) {
      if (slot(seed, u) == mine) return 1.0;
    }
    return 0.0;
  }

 private:
  std::uint64_t slot(std::uint64_t seed, NodeId v) const {
    return mix64(hash_combine(seed, v)) % slots_;
  }
  const Graph* g_;
  std::uint64_t slots_;
};

engine::SearchRequest route_request(engine::SearchRoute route,
                                    engine::ExecutionPolicy policy) {
  using engine::SearchRequest;
  using engine::SearchRoute;
  switch (route) {
    case SearchRoute::kExhaustive:
      return SearchRequest::exhaustive(64, policy);
    case SearchRoute::kExhaustiveBits:
      return SearchRequest::exhaustive_bits(6, policy);
    case SearchRoute::kConditionalExpectation:
      return SearchRequest::conditional_expectation(6, policy);
    case SearchRoute::kPrefixWalk:
      return SearchRequest::prefix_walk(6, policy);
  }
  return {};
}

TEST(SubstrateDifferential, AllFourRoutesBitIdenticalAcrossSubstrates) {
  const Graph g = gen::gnp(48, 0.08, 21);
  CollisionOracle oracle(g, 8);
  const engine::SearchRoute routes[] = {
      engine::SearchRoute::kExhaustive,
      engine::SearchRoute::kExhaustiveBits,
      engine::SearchRoute::kConditionalExpectation,
      engine::SearchRoute::kPrefixWalk,
  };
  for (std::uint32_t p = 1; p <= 17; ++p) {
    for (engine::SearchRoute route : routes) {
      Cluster ref(cluster_config(p, 4096));
      engine::ExecutionPolicy ref_policy;
      ref_policy.backend = engine::SearchBackend::kSharded;
      ref_policy.cluster = &ref;
      const engine::Selection a =
          engine::search(oracle, route_request(route, ref_policy));
      for (std::uint32_t threads : {1u, 2u, 8u}) {
        Cluster tp(
            cluster_config(p, 4096, SubstrateKind::kThreadPool, threads));
        engine::ExecutionPolicy tp_policy;
        tp_policy.backend = engine::SearchBackend::kSharded;
        tp_policy.cluster = &tp;
        const engine::Selection b =
            engine::search(oracle, route_request(route, tp_policy));
        const auto ctx = [&] {
          return ::testing::Message()
                 << "route=" << engine::to_string(route) << " p=" << p
                 << " threads=" << threads;
        };
        EXPECT_EQ(a.seed, b.seed) << ctx();
        EXPECT_EQ(a.cost, b.cost) << ctx();            // bit-identical,
        EXPECT_EQ(a.mean_cost, b.mean_cost) << ctx();  // not just near
        EXPECT_EQ(a.stats.evaluations, b.stats.evaluations) << ctx();
        EXPECT_EQ(a.stats.sweeps, b.stats.sweeps) << ctx();
        EXPECT_EQ(a.stats.sharded.rounds, b.stats.sharded.rounds) << ctx();
        EXPECT_EQ(a.stats.sharded.words, b.stats.sharded.words) << ctx();
        EXPECT_EQ(ref.ledger().rounds(), tp.ledger().rounds()) << ctx();
      }
    }
  }
}

TEST(SubstrateDifferential, ConvergeCastTotalsMatchAcrossSubstrates) {
  using engine::sharded::converge_cast_sum;
  constexpr std::uint32_t kMachines = 16;
  static constexpr std::size_t kWidth = 5;
  auto run = [&](Cluster& cluster) {
    return converge_cast_sum(
        cluster, kWidth, 4,
        [](MachineId m, std::int64_t* acc) {
          for (std::size_t k = 0; k < kWidth; ++k)
            acc[k] = static_cast<std::int64_t>(mix64(hash_combine(m, k)) %
                                               1000) -
                     500;
        },
        nullptr);
  };
  Cluster ref(cluster_config(kMachines, 4096));
  Cluster tp(cluster_config(kMachines, 4096, SubstrateKind::kThreadPool, 8));
  EXPECT_EQ(run(ref), run(tp));
  EXPECT_EQ(ref.ledger().rounds(), tp.ledger().rounds());
}

// ---- Capacity violations surface on the host thread. ----

TEST(SubstrateViolations, StrictThreadPoolThrowsOnOversend) {
  // s = 64 words; one machine ships 65 — the "outgoing messages" check
  // must throw on the host thread (a worker-side throw would abort).
  Cluster cluster(cluster_config(8, 64, SubstrateKind::kThreadPool, 4));
  const std::vector<Word> big(65, 7);
  EXPECT_THROW(
      cluster.round([&](MachineId m, const std::vector<Word>&,
                        std::vector<Word>&, Outbox& out) {
        if (m == 3) out.send(0, big);
      }),
      check_error);
}

TEST(SubstrateViolations, LenientThreadPoolRecordsAndDelivers) {
  Cluster cluster(cluster_config(8, 64, SubstrateKind::kThreadPool, 4),
                  /*strict=*/false);
  const std::vector<Word> big(65, 7);
  cluster.round([&](MachineId m, const std::vector<Word>&,
                    std::vector<Word>&, Outbox& out) {
    if (m == 3) out.send(0, big);
  });
  EXPECT_GE(cluster.ledger().violations().size(), 1u);
  // Delivery still happened, with reference framing.
  std::size_t messages = 0;
  for_each_message(cluster.inbox(0),
                   [&](MachineId from, std::span<const Word> pl) {
                     EXPECT_EQ(from, 3u);
                     EXPECT_EQ(pl.size(), 65u);
                     ++messages;
                   });
  EXPECT_EQ(messages, 1u);
}

TEST(SubstrateViolations, NonexistentDestinationThrowsOnThreadPool) {
  Cluster cluster(cluster_config(4, 256, SubstrateKind::kThreadPool, 2));
  EXPECT_THROW(
      cluster.round([](MachineId m, const std::vector<Word>&,
                       std::vector<Word>&, Outbox& out) {
        if (m == 1) out.send(9, {1});
      }),
      check_error);
}

// ---- Steady-state rounds allocate nothing. ----

void expect_steady_state_alloc_free(SubstrateKind kind,
                                    std::uint32_t threads) {
  Cluster cluster(cluster_config(8, 4096, kind, threads));
  const std::uint32_t p = cluster.num_machines();
  // Fixed-shape traffic: same destinations and payload sizes every
  // round, so warm capacities fit exactly.
  const StepFn step = [p](MachineId m, const std::vector<Word>& inbox,
                          std::vector<Word>& storage, Outbox& out) {
    Word digest = 0;
    for_each_message(inbox, [&](MachineId, std::span<const Word> pl) {
      for (Word w : pl) digest += w;
    });
    if (!storage.empty()) storage[0] = digest;
    out.send((m + 1) % p, {m, digest, 42});
    out.send((m + 3) % p, {digest});
  };
  for (MachineId m = 0; m < p; ++m) cluster.storage(m).assign(1, 0);
  // Warm-up: buffer capacities, the ledger's phase key, the substrate's
  // worker pool (created lazily on the first round).
  for (int r = 0; r < 3; ++r) cluster.round(step);
  const std::uint64_t before = g_allocs.load();
  for (int r = 0; r < 5; ++r) cluster.round(step);
  EXPECT_EQ(g_allocs.load() - before, 0u)
      << "steady-state rounds allocated on the "
      << to_string(kind) << " substrate";
}

TEST(SubstrateAllocations, SequentialSteadyStateRoundsAllocateNothing) {
  expect_steady_state_alloc_free(SubstrateKind::kSequential, 0);
}

TEST(SubstrateAllocations, ThreadPoolSteadyStateRoundsAllocateNothing) {
  expect_steady_state_alloc_free(SubstrateKind::kThreadPool, 4);
}

// ---- Config resolution and stats. ----

TEST(SubstrateConfig, PlannedConcurrencyClampsToMachines) {
  Config seq = cluster_config(4, 256);
  EXPECT_EQ(planned_concurrency(seq), 1u);
  Config tp = cluster_config(4, 256, SubstrateKind::kThreadPool, 64);
  EXPECT_EQ(planned_concurrency(tp), 4u);
  Config hw = cluster_config(4, 256, SubstrateKind::kThreadPool, 0);
  EXPECT_GE(planned_concurrency(hw), 1u);
  EXPECT_LE(planned_concurrency(hw), 4u);
  EXPECT_STREQ(to_string(SubstrateKind::kSequential), "sequential");
  EXPECT_STREQ(to_string(SubstrateKind::kThreadPool), "thread-pool");
}

TEST(SubstrateConfig, ClusterReportsSubstrateWithoutSpinningItUp) {
  Cluster cluster(cluster_config(6, 256, SubstrateKind::kThreadPool, 3));
  EXPECT_STREQ(cluster.substrate_name(), "thread-pool");
  EXPECT_EQ(cluster.substrate_concurrency(), 3u);
  EXPECT_EQ(cluster.substrate_stats().rounds, 0u);
}

TEST(SubstrateStatsTest, RoundsAndPhaseWallAccumulate) {
  Cluster cluster(cluster_config(8, 4096, SubstrateKind::kThreadPool, 4));
  for (std::uint64_t r = 0; r < 6; ++r) cluster.round(chatter_step(8, r));
  const SubstrateStats& s = cluster.substrate_stats();
  EXPECT_EQ(s.rounds, 6u);
  EXPECT_GE(s.step_ms, 0.0);
  EXPECT_GE(s.exchange_ms, 0.0);
  EXPECT_GE(s.barrier_wait_ms, 0.0);
}

// ---- Observability: substrate.round spans and mpc.substrate.* ----

TEST(SubstrateObs, RoundSpansAndMetricsCarrySubstrateLabel) {
  obs::set_tracing(true);
  obs::set_metrics(true);
  obs::clear_trace();
  obs::Metrics::global().clear();
  {
    Cluster cluster(cluster_config(4, 4096, SubstrateKind::kThreadPool, 2));
    for (std::uint64_t r = 0; r < 3; ++r) cluster.round(chatter_step(4, r));
  }
  obs::set_tracing(false);
  obs::set_metrics(false);
  const auto spans = obs::trace_snapshot();
  std::size_t round_spans = 0;
  for (const auto& rec : spans) {
    if (rec.name != "substrate.round") continue;
    ++round_spans;
    bool has_substrate = false, has_barrier = false;
    for (const auto& [k, v] : rec.args) {
      if (k == "substrate") {
        has_substrate = true;
        EXPECT_EQ(v, "thread-pool");
      }
      if (k == "barrier_wait_us") has_barrier = true;
    }
    EXPECT_TRUE(has_substrate);
    EXPECT_TRUE(has_barrier);
  }
  EXPECT_EQ(round_spans, 3u);
  EXPECT_EQ(obs::Metrics::global().counter_total("mpc.substrate.rounds"), 3u);
  bool labeled = false;
  for (const auto& e : obs::Metrics::global().snapshot()) {
    if (e.name == "mpc.substrate.step_ms" && e.labels.backend == "thread-pool")
      labeled = true;
  }
  EXPECT_TRUE(labeled);
  obs::clear_trace();
  obs::Metrics::global().clear();
}

}  // namespace
}  // namespace pdc::mpc
