// Quickstart: build a graph, attach degree+1 palettes, solve D1LC with
// the deterministic MPC pipeline, and inspect the result.
//
//   $ ./examples/quickstart

#include <iostream>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"

int main() {
  using namespace pdc;

  // 1. A graph. Any simple undirected graph works; here a random one.
  Graph g = gen::gnp(/*n=*/1000, /*p=*/0.01, /*seed=*/42);
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";

  // 2. A D1LC instance: every node needs a palette of size >= degree+1.
  //    make_degree_plus_one gives the tightest such palettes; real
  //    applications bring their own lists (see the other examples).
  D1lcInstance inst = make_degree_plus_one(g);

  // 3. Solve. Mode::kDeterministic runs the full derandomized pipeline
  //    (PRG + conditional expectations per Lemma 10, deferral recursion
  //    per Theorem 12, partition per Lemma 23 if degrees demand it).
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  d1lc::SolveResult result = d1lc::solve_d1lc(inst, opt);

  // 4. Inspect.
  std::cout << "valid coloring: " << (result.valid ? "yes" : "no") << "\n"
            << "colors used:    " << count_colors_used(result.coloring)
            << " (max degree + 1 = " << g.max_degree() + 1 << ")\n"
            << "MPC rounds:     " << result.ledger.rounds() << "\n"
            << "peak local mem: " << result.ledger.peak_local_space()
            << " words\n"
            << "colored by: middle=" << result.colored_middle
            << " low-degree=" << result.colored_low_degree
            << " greedy-tail=" << result.colored_greedy << "\n";

  // Determinism: run it again, get byte-identical output.
  d1lc::SolveResult again = d1lc::solve_d1lc(inst, opt);
  std::cout << "deterministic:  "
            << (again.coloring == result.coloring ? "yes (re-run identical)"
                                                  : "NO")
            << "\n";
  return result.valid ? 0 : 1;
}
