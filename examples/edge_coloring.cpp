// (2Δ-1)-edge-coloring through the D1LC pipeline — the reduction the
// paper's introduction motivates (distributed edge-coloring algorithms
// consume D1LC as a subroutine). Models link scheduling in a wireless
// mesh: edges sharing an endpoint cannot transmit in the same time slot;
// a proper edge coloring with few colors is a short TDMA schedule.

#include <iostream>

#include "pdc/apps/edge_coloring.hpp"
#include "pdc/graph/instance_cli.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: edge_coloring [input flags]\n" << io::cli_graph_help();
    return 0;
  }
  // Default: a mesh-ish topology, small-world over 600 radios.
  Graph g = io::make_cli_graph(
      args, {.kind = "smallworld", .n = 600, .d = 3, .seed = 7});
  std::cout << "mesh: radios=" << g.num_nodes() << " links=" << g.num_edges()
            << " max-contention(Delta)=" << g.max_degree() << "\n";

  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = 5;
  apps::EdgeColoringResult r = apps::edge_color(g, opt);

  std::cout << "schedule valid: " << (r.valid ? "yes" : "NO") << "\n"
            << "time slots used: " << r.colors_used << " (bound 2*Delta-1 = "
            << 2 * g.max_degree() - 1 << ")\n"
            << "line-graph D1LC: n=" << r.edge_endpoints.size()
            << " rounds=" << r.solve.ledger.rounds() << "\n";

  // Show the first few scheduled links.
  std::cout << "sample schedule (link -> slot):\n";
  for (std::size_t e = 0; e < 5 && e < r.edge_endpoints.size(); ++e) {
    std::cout << "  (" << r.edge_endpoints[e].first << ","
              << r.edge_endpoints[e].second << ") -> slot " << r.colors[e]
              << "\n";
  }
  return r.valid ? 0 : 1;
}
