// pdc_solve — command-line D1LC solver and coloring server.
//
//   pdc_solve --graph path.col            # DIMACS or edge list
//   pdc_solve --instance path.d1lc        # edge list + palette lines
//   pdc_solve --gen gnp --n 2000 --p 0.01 # built-in generators
//   pdc_solve --gen gnp --n 50000 --serve # coloring-as-a-service REPL
//
// Flags: --mode det|rand, --seed-bits K, --phi X, --delta X,
//        --passes K, --out coloring.txt, --detail
// Serve: --full-fraction X, --cache N, --max-pending N
//
// One-shot mode prints the solve summary (validity, colors, rounds,
// space, attribution); --detail adds the per-procedure derandomization
// tables. --serve solves once, then reads one command per stdin line:
//
//   query V | neighbors V | colors-used | validate | stats
//   insert U V | delete U V | add-vertex | del-vertex V   (batched)
//   flush | quit
//
// Mutations coalesce in a service::Batcher and apply as one batch on
// flush / max-pending / any query; the exit code reflects a final
// validate.

#include <fstream>
#include <iostream>
#include <sstream>

#include "pdc/d1lc/report.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/instance_cli.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/service/batcher.hpp"
#include "pdc/service/service.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;

namespace {

d1lc::SolverOptions make_solver_options(const CliArgs& args) {
  d1lc::SolverOptions opt;
  opt.mode = args.get("mode", "det") == "rand" ? d1lc::Mode::kRandomized
                                               : d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = static_cast<int>(args.get_int("seed-bits", 6));
  opt.phi = args.get_double("phi", opt.phi);
  opt.delta = args.get_double("delta", opt.delta);
  opt.middle_passes = static_cast<int>(args.get_int("passes", 2));
  opt.seed = args.get_int("seed", 1);
  return opt;
}

void print_mutation_result(const service::MutationResult& r) {
  std::cout << "applied request=" << r.request_id << " changed=" << r.applied
            << " damaged=" << r.damaged << " full=" << (r.full_resolve ? 1 : 0)
            << " cache=" << (r.cache_hit ? 1 : 0)
            << " valid=" << (r.valid ? 1 : 0);
  if (!r.new_vertices.empty()) {
    std::cout << " new-vertices=";
    for (std::size_t i = 0; i < r.new_vertices.size(); ++i)
      std::cout << (i ? "," : "") << r.new_vertices[i];
  }
  std::cout << "\n";
}

void print_stats(const service::ColoringService& svc) {
  const service::ServiceStats& s = svc.stats();
  std::cout << "stat requests " << s.requests << "\n"
            << "stat queries " << s.queries << "\n"
            << "stat batches " << s.batches << "\n"
            << "stat mutations " << s.mutations << "\n"
            << "stat incremental_recolors " << s.incremental_recolors << "\n"
            << "stat full_resolves " << s.full_resolves << "\n"
            << "stat damaged_nodes " << s.damaged_nodes << "\n"
            << "stat recolored_nodes " << s.recolored_nodes << "\n"
            << "stat cache_hits " << s.cache.hits << "\n"
            << "stat cache_misses " << s.cache.misses << "\n"
            << "stat cache_rejected_hits " << s.cache.rejected_hits << "\n"
            << "stat live_vertices " << svc.graph().num_alive() << "\n"
            << "stat live_edges " << svc.graph().num_edges() << "\n";
}

int run_serve(const CliArgs& args, const D1lcInstance& inst) {
  service::ServiceConfig cfg;
  cfg.solver = make_solver_options(args);
  cfg.full_resolve_fraction = args.get_double("full-fraction", 0.25);
  cfg.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 1024));
  service::ColoringService svc(inst, cfg);
  service::Batcher front(
      svc, static_cast<std::size_t>(args.get_int("max-pending", 256)));
  std::cout << "serving n=" << svc.graph().num_alive()
            << " m=" << svc.graph().num_edges() << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    try {
      if (cmd == "query") {
        NodeId v = 0;
        is >> v;
        std::cout << "color " << v << " " << front.query_color(v) << "\n";
      } else if (cmd == "neighbors") {
        NodeId v = 0;
        is >> v;
        std::cout << "neighborhood";
        for (auto [u, c] : front.query_neighborhood(v))
          std::cout << " " << u << ":" << c;
        std::cout << "\n";
      } else if (cmd == "colors-used") {
        std::cout << "colors-used " << front.query_colors_used() << "\n";
      } else if (cmd == "validate") {
        std::cout << "valid " << (front.query_validate() ? 1 : 0) << "\n";
      } else if (cmd == "stats") {
        front.flush();
        print_stats(svc);
      } else if (cmd == "insert" || cmd == "delete") {
        NodeId u = 0, v = 0;
        is >> u >> v;
        auto r = front.enqueue(cmd == "insert"
                                   ? service::Mutation::insert_edge(u, v)
                                   : service::Mutation::delete_edge(u, v));
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "add-vertex") {
        auto r = front.enqueue(service::Mutation::insert_vertex());
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "del-vertex") {
        NodeId v = 0;
        is >> v;
        auto r = front.enqueue(service::Mutation::delete_vertex(v));
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "flush") {
        auto r = front.flush();
        if (r) print_mutation_result(*r);
        else std::cout << "empty\n";
      } else {
        std::cout << "error: unknown command '" << cmd << "'\n";
      }
    } catch (const check_error& e) {
      // A bad request (dead id, self-loop, ...) fails THAT command; the
      // service and the session keep going.
      std::cout << "error: " << e.what() << "\n";
    }
  }

  const bool ok = front.query_validate();
  std::cout << "final valid " << (ok ? 1 : 0) << "\n";
  print_stats(svc);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: pdc_solve [input flags] [--serve]\n"
              << io::cli_graph_help()
              << "  --mode det|rand   (default det)\n"
                 "  --seed-bits K     PRG seed length (default 6)\n"
                 "  --phi X --delta X --passes K\n"
                 "  --out FILE        write 'node color' lines\n"
                 "  --detail          per-procedure tables\n"
                 "  --serve           REPL server on stdin (query/insert/\n"
                 "                    delete/add-vertex/del-vertex/flush/\n"
                 "                    stats/validate/quit)\n"
                 "  --full-fraction X --cache N --max-pending N   serve knobs\n"
              << obs::CliSession::help();
    return 0;
  }
  obs::CliSession obs_session(args);
  D1lcInstance inst = io::make_cli_instance(args);

  if (args.has("serve")) {
    const int rc = run_serve(args, inst);
    obs_session.flush();
    return rc;
  }

  d1lc::SolverOptions opt = make_solver_options(args);
  d1lc::SolveResult result = d1lc::solve_d1lc(inst, opt);
  if (obs_session.metrics()) result.ledger.publish(obs::Metrics::global());
  d1lc::print_summary(std::cout, inst, result);
  if (args.has("detail")) d1lc::print_detail(std::cout, result);
  obs_session.flush();

  if (args.has("out")) {
    std::ofstream f(args.get("out", ""));
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
      f << v << " " << result.coloring[v] << "\n";
  }
  return result.valid ? 0 : 1;
}
