// pdc_solve — command-line D1LC solver.
//
//   pdc_solve --graph path.col            # DIMACS or edge list
//   pdc_solve --instance path.d1lc        # edge list + palette lines
//   pdc_solve --gen gnp --n 2000 --p 0.01 # built-in generators
//
// Flags: --mode det|rand, --seed-bits K, --phi X, --delta X,
//        --passes K, --out coloring.txt, --detail
//
// Prints the solve summary (validity, colors, rounds, space,
// attribution); --detail adds the per-procedure derandomization tables.

#include <fstream>
#include <iostream>

#include "pdc/d1lc/report.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/graph/io.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;

namespace {

D1lcInstance make_instance(const CliArgs& args) {
  if (args.has("instance")) return io::load_instance(args.get("instance", ""));
  if (args.has("graph")) {
    Graph g = io::load_graph(args.get("graph", ""));
    return make_degree_plus_one(g);
  }
  const std::string kind = args.get("gen", "gnp");
  const NodeId n = static_cast<NodeId>(args.get_int("n", 2000));
  const std::uint64_t seed = args.get_int("gen-seed", 1);
  Graph g;
  if (kind == "gnp") {
    g = gen::gnp(n, args.get_double("p", 0.01), seed);
  } else if (kind == "cliques") {
    g = gen::planted_cliques(n / 20, 20, 0.3, seed).graph;
  } else if (kind == "powerlaw") {
    g = gen::power_law(n, 2.5, 8.0, seed);
  } else if (kind == "smallworld") {
    g = gen::small_world(n, 4, 0.1, seed);
  } else if (kind == "ba") {
    g = gen::preferential_attachment(n, 4, seed);
  } else {
    PDC_CHECK_MSG(false, "unknown --gen " << kind
                         << " (gnp|cliques|powerlaw|smallworld|ba)");
  }
  std::uint32_t extra = static_cast<std::uint32_t>(args.get_int("extra", 0));
  if (extra > 0) {
    return make_random_lists(g, static_cast<Color>(g.max_degree()) + 2 * extra,
                             extra, seed + 1);
  }
  return make_degree_plus_one(g);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: pdc_solve [--graph F | --instance F | --gen KIND]\n"
                 "  --n N --p P --extra K --gen-seed S   generator knobs\n"
                 "  --mode det|rand   (default det)\n"
                 "  --seed-bits K     PRG seed length (default 6)\n"
                 "  --phi X --delta X --passes K\n"
                 "  --out FILE        write 'node color' lines\n"
                 "  --detail          per-procedure tables\n"
              << obs::CliSession::help();
    return 0;
  }
  obs::CliSession obs_session(args);
  D1lcInstance inst = make_instance(args);

  d1lc::SolverOptions opt;
  opt.mode = args.get("mode", "det") == "rand" ? d1lc::Mode::kRandomized
                                               : d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = static_cast<int>(args.get_int("seed-bits", 6));
  opt.phi = args.get_double("phi", opt.phi);
  opt.delta = args.get_double("delta", opt.delta);
  opt.middle_passes = static_cast<int>(args.get_int("passes", 2));
  opt.seed = args.get_int("seed", 1);

  d1lc::SolveResult result = d1lc::solve_d1lc(inst, opt);
  if (obs_session.metrics()) result.ledger.publish(obs::Metrics::global());
  d1lc::print_summary(std::cout, inst, result);
  if (args.has("detail")) d1lc::print_detail(std::cout, result);
  obs_session.flush();

  if (args.has("out")) {
    std::ofstream f(args.get("out", ""));
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
      f << v << " " << result.coloring[v] << "\n";
  }
  return result.valid ? 0 : 1;
}
