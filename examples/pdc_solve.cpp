// pdc_solve — command-line D1LC solver and coloring server.
//
//   pdc_solve --graph path.col            # DIMACS or edge list
//   pdc_solve --instance path.d1lc        # edge list + palette lines
//   pdc_solve --gen gnp --n 2000 --p 0.01 # built-in generators
//   pdc_solve --gen gnp --n 50000 --serve # coloring-as-a-service REPL
//
// Flags: --mode det|rand, --seed-bits K, --phi X, --delta X,
//        --passes K, --out coloring.txt, --detail
// Serve: --full-fraction X, --cache N, --max-pending N
//
// One-shot mode prints the solve summary (validity, colors, rounds,
// space, attribution); --detail adds the per-procedure derandomization
// tables. --serve solves once, then reads one command per stdin line:
//
//   query V | neighbors V | colors-used | validate | stats
//   insert U V | delete U V | add-vertex | del-vertex V   (batched)
//   stress [readers [reads-per-reader [mutations]]]
//   flush | quit
//
// Mutations coalesce in a service::Batcher and apply as one batch on
// flush / max-pending / any query; the exit code reflects a final
// validate. `stress` spins up reader threads that hammer the lock-free
// snapshot path (each with its own Batcher session) while the main
// thread applies delta batches, then reports whether every concurrent
// read observed a proper coloring.

#include <atomic>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <thread>

#include "pdc/d1lc/report.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/instance_cli.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/service/batcher.hpp"
#include "pdc/service/service.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;

namespace {

d1lc::SolverOptions make_solver_options(const CliArgs& args) {
  d1lc::SolverOptions opt;
  opt.mode = args.get("mode", "det") == "rand" ? d1lc::Mode::kRandomized
                                               : d1lc::Mode::kDeterministic;
  opt.l10.seed_bits = static_cast<int>(args.get_int("seed-bits", 6));
  opt.phi = args.get_double("phi", opt.phi);
  opt.delta = args.get_double("delta", opt.delta);
  opt.middle_passes = static_cast<int>(args.get_int("passes", 2));
  opt.seed = args.get_int("seed", 1);
  return opt;
}

void print_mutation_result(const service::MutationResult& r) {
  std::cout << "applied request=" << r.request_id << " changed=" << r.applied
            << " damaged=" << r.damaged << " full=" << (r.full_resolve ? 1 : 0)
            << " cache=" << (r.cache_hit ? 1 : 0)
            << " valid=" << (r.valid ? 1 : 0);
  if (!r.new_vertices.empty()) {
    std::cout << " new-vertices=";
    for (std::size_t i = 0; i < r.new_vertices.size(); ++i)
      std::cout << (i ? "," : "") << r.new_vertices[i];
  }
  std::cout << "\n";
}

void print_stats(const service::ColoringService& svc) {
  const service::ServiceStats& s = svc.stats();
  std::cout << "stat requests " << s.requests << "\n"
            << "stat queries " << s.queries << "\n"
            << "stat batches " << s.batches << "\n"
            << "stat mutations " << s.mutations << "\n"
            << "stat incremental_recolors " << s.incremental_recolors << "\n"
            << "stat full_resolves " << s.full_resolves << "\n"
            << "stat damaged_nodes " << s.damaged_nodes << "\n"
            << "stat recolored_nodes " << s.recolored_nodes << "\n"
            << "stat cache_hits " << s.cache.hits << "\n"
            << "stat cache_misses " << s.cache.misses << "\n"
            << "stat cache_rejected_hits " << s.cache.rejected_hits << "\n"
            << "stat snapshot_publishes " << s.snapshot_publishes << "\n"
            << "stat snapshot_chunks_rebuilt " << s.snapshot_chunks_rebuilt
            << "\n"
            << "stat snapshot_chunks_reused " << s.snapshot_chunks_reused
            << "\n"
            << "stat snapshot_epoch " << svc.snapshot()->epoch << "\n"
            << "stat compactions " << s.compactions << "\n"
            << "stat live_vertices " << svc.graph().num_alive() << "\n"
            << "stat live_edges " << svc.graph().num_edges() << "\n";
}

/// Multi-client stress: `readers` threads read snapshots through their
/// own sessions (ReadMode::kSnapshot — no forced flushes) and check
/// properness on every sampled neighborhood, while the caller's thread
/// applies `mutations` random edge inserts through the default session.
/// Prints one greppable summary line; ok=1 means no reader ever saw a
/// torn or improper coloring.
void run_stress(service::Batcher& front, int readers,
                std::uint64_t reads_per_reader, int mutations) {
  using service::ReadMode;
  std::atomic<std::uint64_t> reads{0}, improper{0}, errors{0};
  std::atomic<std::uint64_t> epoch_lo{~std::uint64_t{0}}, epoch_hi{0};

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(readers));
  for (int t = 0; t < readers; ++t) {
    pool.emplace_back([&front, &reads, &improper, &errors, &epoch_lo,
                       &epoch_hi, reads_per_reader, t]() {
      auto session = front.open_session();
      std::mt19937_64 rng(0x5eed + static_cast<std::uint64_t>(t));
      for (std::uint64_t i = 0; i < reads_per_reader; ++i) {
        auto snap = session.read_snapshot(ReadMode::kSnapshot);
        for (auto lo = epoch_lo.load();
             snap->epoch < lo && !epoch_lo.compare_exchange_weak(lo, snap->epoch);) {
        }
        for (auto hi = epoch_hi.load();
             snap->epoch > hi && !epoch_hi.compare_exchange_weak(hi, snap->epoch);) {
        }
        const NodeId v = static_cast<NodeId>(rng() % snap->capacity);
        if (snap->alive(v)) {
          const Color c = snap->color(v);
          bool bad = c == kNoColor;
          for (NodeId u : snap->neighbors(v)) bad |= snap->color(u) == c;
          if (bad) ++improper;
          if ((i & 63u) == 0) {
            // Every 64th read goes through the metered query path so
            // the stress also exercises spans/metrics publication.
            try {
              (void)session.query_color(v, ReadMode::kSnapshot);
            } catch (const check_error&) {
              ++errors;  // raced a deletion between snapshots — benign
            }
          }
        }
        ++reads;
      }
    });
  }

  service::ColoringService& svc = front.service();
  const NodeId cap = svc.graph().capacity();
  std::mt19937_64 rng(0xc0105);
  for (int k = 0; k < mutations; ++k) {
    const NodeId u = static_cast<NodeId>(rng() % cap);
    const NodeId v = static_cast<NodeId>(rng() % cap);
    if (u == v || !svc.alive(u) || !svc.alive(v)) continue;
    front.enqueue(service::Mutation::insert_edge(u, v));
    if ((k & 3) == 0) front.flush();
  }
  front.flush();
  for (auto& th : pool) th.join();

  std::cout << "stress readers=" << readers << " reads=" << reads.load()
            << " improper=" << improper.load() << " errors=" << errors.load()
            << " epoch_lo=" << epoch_lo.load()
            << " epoch_hi=" << epoch_hi.load()
            << " ok=" << (improper.load() == 0 ? 1 : 0) << "\n";
}

int run_serve(const CliArgs& args, const D1lcInstance& inst) {
  service::ServiceConfig cfg;
  cfg.solver = make_solver_options(args);
  cfg.full_resolve_fraction = args.get_double("full-fraction", 0.25);
  cfg.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 1024));
  service::ColoringService svc(inst, cfg);
  service::Batcher front(
      svc, static_cast<std::size_t>(args.get_int("max-pending", 256)));
  std::cout << "serving n=" << svc.graph().num_alive()
            << " m=" << svc.graph().num_edges() << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    try {
      if (cmd == "query") {
        NodeId v = 0;
        is >> v;
        std::cout << "color " << v << " " << front.query_color(v) << "\n";
      } else if (cmd == "neighbors") {
        NodeId v = 0;
        is >> v;
        std::cout << "neighborhood";
        for (auto [u, c] : front.query_neighborhood(v))
          std::cout << " " << u << ":" << c;
        std::cout << "\n";
      } else if (cmd == "colors-used") {
        std::cout << "colors-used " << front.query_colors_used() << "\n";
      } else if (cmd == "validate") {
        std::cout << "valid " << (front.query_validate() ? 1 : 0) << "\n";
      } else if (cmd == "stats") {
        front.flush();
        print_stats(svc);
      } else if (cmd == "insert" || cmd == "delete") {
        NodeId u = 0, v = 0;
        is >> u >> v;
        auto r = front.enqueue(cmd == "insert"
                                   ? service::Mutation::insert_edge(u, v)
                                   : service::Mutation::delete_edge(u, v));
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "add-vertex") {
        auto r = front.enqueue(service::Mutation::insert_vertex());
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "del-vertex") {
        NodeId v = 0;
        is >> v;
        auto r = front.enqueue(service::Mutation::delete_vertex(v));
        if (r) print_mutation_result(*r);
        else std::cout << "queued " << front.pending() << "\n";
      } else if (cmd == "stress") {
        int readers = 4;
        std::uint64_t per = 10000;
        int muts = 32;
        is >> readers >> per >> muts;
        run_stress(front, readers, per, muts);
      } else if (cmd == "flush") {
        auto r = front.flush();
        if (r) print_mutation_result(*r);
        else std::cout << "empty\n";
      } else {
        std::cout << "error: unknown command '" << cmd << "'\n";
      }
    } catch (const check_error& e) {
      // A bad request (dead id, self-loop, ...) fails THAT command; the
      // service and the session keep going.
      std::cout << "error: " << e.what() << "\n";
    }
  }

  const bool ok = front.query_validate();
  std::cout << "final valid " << (ok ? 1 : 0) << "\n";
  print_stats(svc);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: pdc_solve [input flags] [--serve]\n"
              << io::cli_graph_help()
              << "  --mode det|rand   (default det)\n"
                 "  --seed-bits K     PRG seed length (default 6)\n"
                 "  --phi X --delta X --passes K\n"
                 "  --out FILE        write 'node color' lines\n"
                 "  --detail          per-procedure tables\n"
                 "  --serve           REPL server on stdin (query/insert/\n"
                 "                    delete/add-vertex/del-vertex/flush/\n"
                 "                    stats/validate/stress/quit)\n"
                 "  --full-fraction X --cache N --max-pending N   serve knobs\n"
              << obs::CliSession::help();
    return 0;
  }
  obs::CliSession obs_session(args);
  D1lcInstance inst = io::make_cli_instance(args);

  if (args.has("serve")) {
    const int rc = run_serve(args, inst);
    obs_session.flush();
    return rc;
  }

  d1lc::SolverOptions opt = make_solver_options(args);
  d1lc::SolveResult result = d1lc::solve_d1lc(inst, opt);
  if (obs_session.metrics()) result.ledger.publish(obs::Metrics::global());
  d1lc::print_summary(std::cout, inst, result);
  if (args.has("detail")) d1lc::print_detail(std::cout, result);
  obs_session.flush();

  if (args.has("out")) {
    std::ofstream f(args.get("out", ""));
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
      f << v << " " << result.coloring[v] << "\n";
  }
  return result.valid ? 0 : 1;
}
