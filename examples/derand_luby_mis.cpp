// The paper's own exemplar (Section 4.1): Luby's MIS as a normal
// distributed procedure, derandomized with the framework's machinery
// (distance-4 chunk coloring + per-round seed selection by conditional
// expectations), side by side with the randomized original.

#include <iostream>

#include "pdc/baseline/luby.hpp"
#include "pdc/graph/generators.hpp"
#include "pdc/obs/cli.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;
using namespace pdc::baseline;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: derand_luby_mis [--n N] [--p P]\n"
              << obs::CliSession::help();
    return 0;
  }
  obs::CliSession obs_session(args);
  Graph g = gen::gnp(static_cast<NodeId>(args.get_int("n", 5000)),
                     args.get_double("p", 0.002), 99);
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n\n";

  MisResult rnd = luby_mis(g, /*seed=*/1);
  auto [ri, rm] = check_mis(g, rnd.in_mis);
  std::uint64_t rnd_size = 0;
  for (auto b : rnd.in_mis) rnd_size += b;
  std::cout << "randomized Luby:   rounds=" << rnd.rounds
            << " |MIS|=" << rnd_size
            << " independent=" << (ri ? "yes" : "NO")
            << " maximal=" << (rm ? "yes" : "NO") << "\n";

  derand::Lemma10Options opt;
  opt.seed_bits = 6;
  opt.strategy = derand::SeedStrategy::kConditionalExpectation;
  MisResult det = luby_mis_derandomized(g, opt, /*max_rounds=*/32);
  auto [di, dm] = check_mis(g, det.in_mis);
  std::uint64_t det_size = 0;
  for (auto b : det.in_mis) det_size += b;
  std::cout << "derandomized Luby: rounds=" << det.rounds
            << " |MIS|=" << det_size
            << " independent=" << (di ? "yes" : "NO")
            << " maximal=" << (dm ? "yes" : "NO")
            << " greedy_tail=" << det.greedy_added << "\n\n";

  std::cout << "The derandomized run is reproducible: every round picks the\n"
               "PRG seed minimizing undecided nodes via the method of\n"
               "conditional expectations; the leftover 'deferred' nodes are\n"
               "finished greedily (the Theorem-12 tail).\n";
  return (ri && rm && di && dm) ? 0 : 1;
}
