// Exam timetabling as list coloring.
//
// Exams conflict when a student sits both; conflicting exams need
// different time slots. Each exam additionally has a list of *feasible*
// slots (room availability, examiner constraints). Padding feasible
// lists to degree+1 with overflow slots makes the instance D1LC — the
// pipeline then guarantees a conflict-free timetable, preferring regular
// slots and spilling to overflow slots only where conflict degree forces
// it. The comparison with greedy shows both are valid; the point of the
// MPC pipeline is parallel, deterministic scheduling at scale.

#include <iostream>
#include <set>
#include <vector>

#include "pdc/baseline/greedy.hpp"
#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/coloring.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/graph/instance_cli.hpp"
#include "pdc/util/rng.hpp"

using namespace pdc;

int main() {
  const NodeId kExams = 800;
  const int kStudents = 6000;
  const int kCoursesPerStudent = 5;
  const Color kRegularSlots = 30;
  Xoshiro256 rng(7);

  // --- Enrollment -> conflict edges. Students pick ~5 exams each with a
  //     popularity skew (low exam ids are popular), as real catalogs have.
  std::set<std::pair<NodeId, NodeId>> conflict;
  for (int s = 0; s < kStudents; ++s) {
    std::vector<NodeId> mine;
    for (int c = 0; c < kCoursesPerStudent; ++c) {
      // Quadratic skew towards small ids.
      NodeId e = static_cast<NodeId>(
          (rng.below(kExams) * rng.below(kExams)) / kExams);
      mine.push_back(e);
    }
    for (std::size_t i = 0; i < mine.size(); ++i)
      for (std::size_t j = i + 1; j < mine.size(); ++j)
        if (mine[i] != mine[j])
          conflict.insert({std::min(mine[i], mine[j]),
                           std::max(mine[i], mine[j])});
  }
  Graph g = Graph::from_edges(
      kExams, {conflict.begin(), conflict.end()});
  std::cout << "conflict graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";

  // --- Feasible slot lists, padded to degree+1 with overflow slots. ---
  std::vector<std::vector<Color>> lists(kExams);
  for (NodeId e = 0; e < kExams; ++e) {
    // Each exam is feasible in ~2/3 of the regular slots.
    for (Color slot = 0; slot < kRegularSlots; ++slot)
      if ((mix64(hash_combine(e, static_cast<std::uint64_t>(slot))) % 3) != 0)
        lists[e].push_back(slot);
  }
  D1lcInstance inst{
      g, io::pad_lists_to_degree_plus_one(g, std::move(lists), kRegularSlots)};

  // --- Schedule with the deterministic pipeline and compare to greedy.
  d1lc::SolverOptions opt;
  d1lc::SolveResult r = d1lc::solve_d1lc(inst, opt);
  Coloring greedy = baseline::greedy_d1lc(inst,
                                          baseline::GreedyOrder::kDegeneracy);

  auto report = [&](const char* name, const Coloring& c) {
    std::uint64_t overflow_exams = 0;
    for (Color slot : c) overflow_exams += (slot >= kRegularSlots);
    std::cout << name << ": valid="
              << (is_proper_coloring(inst, c) ? "yes" : "NO")
              << " slots_used=" << count_colors_used(c)
              << " overflow_exams=" << overflow_exams << "\n";
  };
  report("mpc-deterministic", r.coloring);
  report("greedy-degeneracy", greedy);
  return r.valid ? 0 : 1;
}
