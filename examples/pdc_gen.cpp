// pdc_gen — instance generator companion to pdc_solve.
//
//   pdc_gen --kind gnp --n 5000 --p 0.01 --out graph.txt
//   pdc_gen --kind cliques --n 400 --out inst.d1lc --palettes random
//
// Kinds: gnp, regular, cliques, powerlaw, smallworld, ba, tree, grid,
// hypercube, core. Output format by extension (.col => DIMACS); with
// --palettes (degree|random) an instance file with palette lines is
// written instead of a bare graph.

#include <iostream>

#include "pdc/graph/instance_cli.hpp"
#include "pdc/graph/io.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help") || !args.has("out")) {
    std::cout
        << "usage: pdc_gen --kind K --n N [--p P] [--d D] [--seed S]\n"
           "               --out FILE [--palettes degree|random [--extra E]]\n"
           "kinds: gnp regular cliques powerlaw smallworld ba tree grid\n"
           "       hypercube core\n";
    return args.has("help") ? 0 : 1;
  }
  // This tool's historical flags (--kind/--seed) map onto the shared
  // dispatch's defaults; the shared --gen/--gen-seed spellings win when
  // both are given.
  io::CliGraphDefaults dflt;
  dflt.kind = args.get("kind", dflt.kind);
  dflt.n = static_cast<NodeId>(
      args.get_int("n", static_cast<std::int64_t>(1000)));
  dflt.seed = args.get_int("seed", 1);
  const std::uint64_t seed = dflt.seed;

  Graph g;
  try {
    g = io::make_cli_graph(args, dflt);
  } catch (const check_error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const std::string out = args.get("out", "");
  if (args.has("palettes")) {
    std::uint32_t extra = static_cast<std::uint32_t>(args.get_int("extra", 2));
    D1lcInstance inst =
        args.get("palettes", "degree") == "random"
            ? make_random_lists(g,
                                static_cast<Color>(g.max_degree()) +
                                    2 * static_cast<Color>(extra) + 1,
                                extra, seed + 1)
            : make_degree_plus_one(g);
    io::save_instance(out, inst);
    std::cout << "wrote instance: n=" << g.num_nodes()
              << " m=" << g.num_edges() << " Delta=" << g.max_degree()
              << " -> " << out << "\n";
  } else {
    io::save_graph(out, g);
    std::cout << "wrote graph: n=" << g.num_nodes() << " m=" << g.num_edges()
              << " Delta=" << g.max_degree() << " -> " << out << "\n";
  }
  return 0;
}
