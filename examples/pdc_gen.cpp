// pdc_gen — instance generator companion to pdc_solve.
//
//   pdc_gen --kind gnp --n 5000 --p 0.01 --out graph.txt
//   pdc_gen --kind cliques --n 400 --out inst.d1lc --palettes random
//
// Kinds: gnp, regular, cliques, powerlaw, smallworld, ba, tree, grid,
// hypercube, core. Output format by extension (.col => DIMACS); with
// --palettes (degree|random) an instance file with palette lines is
// written instead of a bare graph.

#include <iostream>

#include "pdc/graph/generators.hpp"
#include "pdc/graph/io.hpp"
#include "pdc/util/cli.hpp"

using namespace pdc;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help") || !args.has("out")) {
    std::cout
        << "usage: pdc_gen --kind K --n N [--p P] [--d D] [--seed S]\n"
           "               --out FILE [--palettes degree|random [--extra E]]\n"
           "kinds: gnp regular cliques powerlaw smallworld ba tree grid\n"
           "       hypercube core\n";
    return args.has("help") ? 0 : 1;
  }
  const std::string kind = args.get("kind", "gnp");
  const NodeId n = static_cast<NodeId>(args.get_int("n", 1000));
  const std::uint64_t seed = args.get_int("seed", 1);
  const double p = args.get_double("p", 0.01);
  const std::uint32_t d = static_cast<std::uint32_t>(args.get_int("d", 4));

  Graph g;
  if (kind == "gnp") {
    g = gen::gnp(n, p, seed);
  } else if (kind == "regular") {
    g = gen::near_regular(n, d, seed);
  } else if (kind == "cliques") {
    g = gen::planted_cliques(std::max<NodeId>(2, n / 20), 20, 0.3, seed).graph;
  } else if (kind == "powerlaw") {
    g = gen::power_law(n, 2.5, 8.0, seed);
  } else if (kind == "smallworld") {
    g = gen::small_world(n, d, 0.1, seed);
  } else if (kind == "ba") {
    g = gen::preferential_attachment(n, d, seed);
  } else if (kind == "tree") {
    g = gen::random_tree(n, seed);
  } else if (kind == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    g = gen::grid(side, side);
  } else if (kind == "hypercube") {
    int dims = 1;
    while ((NodeId{1} << (dims + 1)) <= n) ++dims;
    g = gen::hypercube(dims);
  } else if (kind == "core") {
    g = gen::core_periphery(n, n / 10, p, 0.3, seed);
  } else {
    std::cerr << "unknown --kind " << kind << "\n";
    return 1;
  }

  const std::string out = args.get("out", "");
  if (args.has("palettes")) {
    std::uint32_t extra = static_cast<std::uint32_t>(args.get_int("extra", 2));
    D1lcInstance inst =
        args.get("palettes", "degree") == "random"
            ? make_random_lists(g,
                                static_cast<Color>(g.max_degree()) +
                                    2 * static_cast<Color>(extra) + 1,
                                extra, seed + 1)
            : make_degree_plus_one(g);
    io::save_instance(out, inst);
    std::cout << "wrote instance: n=" << g.num_nodes()
              << " m=" << g.num_edges() << " Delta=" << g.max_degree()
              << " -> " << out << "\n";
  } else {
    io::save_graph(out, g);
    std::cout << "wrote graph: n=" << g.num_nodes() << " m=" << g.num_edges()
              << " Delta=" << g.max_degree() << " -> " << out << "\n";
  }
  return 0;
}
