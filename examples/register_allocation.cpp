// Register allocation as (degree+1)-list coloring.
//
// A classic D1LC consumer: virtual registers interfere when their live
// ranges overlap; each virtual register can only live in a subset of the
// machine registers (calling conventions, instruction constraints) —
// that subset is its color list. We synthesize a program's live ranges,
// build the interference graph, give every node a list of allowed
// registers (padded to degree+1 with spill slots, which is exactly the
// D1LC guarantee: you can always allocate if you allow enough spills),
// and let the deterministic pipeline allocate.

#include <algorithm>
#include <iostream>
#include <vector>

#include "pdc/d1lc/solver.hpp"
#include "pdc/graph/graph.hpp"
#include "pdc/graph/instance_cli.hpp"
#include "pdc/util/rng.hpp"

using namespace pdc;

namespace {

struct LiveRange {
  std::uint32_t start, end;  // [start, end)
  bool clobbers_callee_saved;
};

}  // namespace

int main() {
  // --- Synthesize live ranges for a few thousand virtual registers. ---
  const NodeId kVirtRegs = 3000;
  const std::uint32_t kProgramLen = 20'000;
  const Color kPhysRegs = 16;         // r0..r15
  Xoshiro256 rng(2024);
  std::vector<LiveRange> ranges(kVirtRegs);
  for (auto& r : ranges) {
    r.start = static_cast<std::uint32_t>(rng.below(kProgramLen));
    r.end = r.start + 1 + static_cast<std::uint32_t>(rng.below(60));
    r.clobbers_callee_saved = rng.chance(1, 4);
  }

  // --- Interference graph: overlap => edge. (Sweep-line build.) ---
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> by_start(kVirtRegs);
  for (NodeId i = 0; i < kVirtRegs; ++i) by_start[i] = i;
  std::sort(by_start.begin(), by_start.end(), [&](NodeId a, NodeId b) {
    return ranges[a].start < ranges[b].start;
  });
  std::vector<NodeId> active;
  for (NodeId v : by_start) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](NodeId u) {
                                  return ranges[u].end <= ranges[v].start;
                                }),
                 active.end());
    for (NodeId u : active) edges.emplace_back(u, v);
    active.push_back(v);
  }
  Graph g = Graph::from_edges(kVirtRegs, std::move(edges));
  std::cout << "interference graph: n=" << g.num_nodes()
            << " m=" << g.num_edges() << " Delta=" << g.max_degree() << "\n";

  // --- Color lists: allowed physical registers, padded with spill
  //     slots (colors >= kPhysRegs) up to degree+1. ---
  std::vector<std::vector<Color>> lists(kVirtRegs);
  for (NodeId v = 0; v < kVirtRegs; ++v) {
    // Callee-saved-clobbering ranges may not use r8..r15.
    Color top = ranges[v].clobbers_callee_saved ? 8 : kPhysRegs;
    for (Color c = 0; c < top; ++c) lists[v].push_back(c);
  }
  D1lcInstance inst{
      g, io::pad_lists_to_degree_plus_one(g, std::move(lists), kPhysRegs)};

  // --- Allocate deterministically (same binary, same allocation —
  //     exactly what a reproducible-build toolchain wants). ---
  d1lc::SolverOptions opt;
  opt.mode = d1lc::Mode::kDeterministic;
  d1lc::SolveResult r = d1lc::solve_d1lc(inst, opt);

  std::uint64_t spilled = 0;
  for (Color c : r.coloring) spilled += (c >= kPhysRegs);
  std::cout << "allocation valid: " << (r.valid ? "yes" : "NO") << "\n"
            << "virtual registers in physical regs: "
            << kVirtRegs - spilled << " / " << kVirtRegs << "\n"
            << "spilled: " << spilled << " ("
            << 100.0 * static_cast<double>(spilled) / kVirtRegs << "%)\n";
  return r.valid ? 0 : 1;
}
